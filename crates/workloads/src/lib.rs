//! The RELIEF benchmark suite (§II-A, Table V).
//!
//! Five deadline-constrained smartphone applications, decomposed into the
//! seven elementary accelerators of Table I exactly as Figure 1 sketches:
//!
//! | Symbol | Application | Deadline | Nodes |
//! |---|---|---|---|
//! | C | Canny edge detection | 16.6 ms (60 FPS) | 12 |
//! | D | Richardson-Lucy deblur (5 iterations) | 16.6 ms | 22 |
//! | G | GRU (hidden 128, seq. len 8) | 7 ms | 120 |
//! | H | Harris corner detection | 16.6 ms | 17 |
//! | L | LSTM (hidden 128, seq. len 8) | 7 ms | 136 |
//!
//! The DAG shapes are reconstructions from Figure 1 plus the standard
//! structure of each kernel; per-node compute times are Table I values
//! (with operation variants such as 3×3 vs 5×5 convolutions) scaled per
//! application so every total matches Table II exactly — see DESIGN.md §8.
//!
//! [`scenario`] builds the paper's four contention levels (§IV-C);
//! [`synthetic`] generates random DAGs for property-based testing.
//!
//! # Examples
//!
//! ```
//! use relief_workloads::App;
//!
//! let canny = App::Canny.dag();
//! assert_eq!(canny.len(), 12);
//! assert_eq!(App::Canny.symbol(), "C");
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


pub mod apps;
pub mod error;
pub mod scenario;
pub mod synthetic;
pub mod variants;

pub use apps::App;
pub use error::WorkloadError;
pub use scenario::{Contention, Mix, CONTINUOUS_TIME_LIMIT};
