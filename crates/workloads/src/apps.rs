//! The five applications, reconstructed from Figure 1 and calibrated to
//! Tables II and V.

use relief_accel::kinds::{AccKind, PLANE_BYTES};
use relief_dag::{Dag, DagBuilder, DagError, NodeId, NodeSpec};
use relief_sim::Dur;
use std::sync::Arc;

/// Ratio of a 3×3 convolution's compute time to the profiled 5×5.
const CONV3X3_RATIO: f64 = 9.0 / 25.0;

/// The five benchmark applications (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum App {
    /// (C) Canny edge detection.
    Canny,
    /// (D) Richardson-Lucy deblur, 5 iterations.
    Deblur,
    /// (G) Gated recurrent unit, hidden size 128, sequence length 8.
    Gru,
    /// (H) Harris corner detection.
    Harris,
    /// (L) Long short-term memory, hidden size 128, sequence length 8.
    Lstm,
}

impl App {
    /// All applications in symbol order (C, D, G, H, L).
    pub const ALL: [App; 5] = [App::Canny, App::Deblur, App::Gru, App::Harris, App::Lstm];

    /// One-letter symbol used throughout the paper's figures.
    pub fn symbol(self) -> &'static str {
        match self {
            App::Canny => "C",
            App::Deblur => "D",
            App::Gru => "G",
            App::Harris => "H",
            App::Lstm => "L",
        }
    }

    /// The application for a symbol letter.
    pub fn from_symbol(s: char) -> Option<App> {
        App::ALL.iter().copied().find(|a| a.symbol() == s.to_string())
    }

    /// Full name.
    pub fn name(self) -> &'static str {
        match self {
            App::Canny => "canny",
            App::Deblur => "deblur",
            App::Gru => "gru",
            App::Harris => "harris",
            App::Lstm => "lstm",
        }
    }

    /// Relative deadline (Table V): 16.6 ms for the 60 FPS vision
    /// applications, 7 ms for the RNNs.
    pub fn deadline(self) -> Dur {
        match self {
            App::Canny | App::Deblur | App::Harris => Dur::from_us(16_600),
            App::Gru | App::Lstm => Dur::from_ms(7),
        }
    }

    /// Table II total compute time, the calibration target.
    pub fn table2_compute(self) -> Dur {
        let us = match self {
            App::Canny => 3539.37,
            App::Deblur => 15610.58,
            App::Gru => 1249.31,
            App::Harris => 6157.30,
            App::Lstm => 1470.02,
        };
        Dur::from_us_f64(us)
    }

    /// Builds the application's task graph.
    ///
    /// # Panics
    ///
    /// Panics if the reconstruction wires an invalid graph — structurally
    /// unreachable for the five built-in applications (their shapes are
    /// fixed and covered by tests). Fallible callers should prefer
    /// [`App::try_dag`].
    pub fn dag(self) -> Arc<Dag> {
        match self.try_dag() {
            Ok(dag) => dag,
            Err(e) => panic!("{self}: invalid built-in dag: {e}"),
        }
    }

    /// Builds the application's task graph, surfacing construction errors
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`DagError`] hit while wiring the graph (none of
    /// the built-in reconstructions can actually produce one).
    pub fn try_dag(self) -> Result<Arc<Dag>, DagError> {
        let raw = match self {
            App::Canny => canny()?,
            App::Deblur => deblur(5)?,
            App::Gru => gru(8)?,
            App::Harris => harris()?,
            App::Lstm => lstm(8)?,
        };
        Ok(Arc::new(calibrate(raw, self)?))
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scales every node's compute time so the application total matches
/// Table II exactly. The scale factors are small (≤ 5 %) residuals of the
/// DAG reconstruction; shapes and node counts are untouched.
fn calibrate(raw: Dag, app: App) -> Result<Dag, DagError> {
    let total = raw.total_compute().as_ps() as f64;
    let target = app.table2_compute().as_ps() as f64;
    let scale = target / total;
    debug_assert!(
        (0.9..1.1).contains(&scale),
        "{app}: reconstruction drifted too far from Table II (scale {scale})"
    );
    let mut b = DagBuilder::new(app.name(), app.deadline());
    for spec in raw.nodes() {
        let mut s = spec.clone();
        s.compute = s.compute.scale(scale);
        b.add_node(s);
    }
    for from in raw.node_ids() {
        for &to in raw.children(from) {
            b.add_edge(from, to)?;
        }
    }
    b.build()
}

/// Node helper: a task on `kind` with its default output size.
fn task(app: App, kind: AccKind, op: &str) -> NodeSpec {
    NodeSpec::new(kind.type_id(), kind.compute_time())
        .with_output_bytes(kind.output_bytes())
        .with_label(format!("{}.{op}", app.symbol()))
}

/// A 3×3 convolution costs 9/25 of the profiled 5×5 (§III-B: compute time
/// is a function of the requested operation).
fn conv3(app: App) -> NodeSpec {
    let mut s = task(app, AccKind::Convolution, "conv3x3");
    s.compute = s.compute.scale(CONV3X3_RATIO);
    s
}

/// ISP front-end shared by the vision pipelines: raw capture -> ISP ->
/// grayscale. Returns (isp, grayscale).
fn vision_frontend(b: &mut DagBuilder, app: App) -> Result<(NodeId, NodeId), DagError> {
    let isp = b.add_node(
        task(app, AccKind::Isp, "isp").with_dram_input_bytes(AccKind::isp_raw_input_bytes()),
    );
    let gray = b.add_node(task(app, AccKind::Grayscale, "gray"));
    b.add_edge(isp, gray)?;
    Ok((isp, gray))
}

/// Canny edge detection (Fig. 1b): ISP → grayscale → Gaussian blur →
/// Sobel x/y → gradient magnitude (sqr, sqr, add, sqrt) and direction
/// (atan2) → non-max suppression → edge tracking. 12 nodes, 14 edges.
fn canny() -> Result<Dag, DagError> {
    let app = App::Canny;
    let mut b = DagBuilder::new(app.name(), app.deadline());
    let (_isp, gray) = vision_frontend(&mut b, app)?;
    let gauss = b.add_node(task(app, AccKind::Convolution, "gauss5x5"));
    let gx = b.add_node(conv3(app).with_label("C.sobel_x"));
    let gy = b.add_node(conv3(app).with_label("C.sobel_y"));
    let sqx = b.add_node(task(app, AccKind::ElemMatrix, "sqr_x"));
    let sqy = b.add_node(task(app, AccKind::ElemMatrix, "sqr_y"));
    let add = b.add_node(task(app, AccKind::ElemMatrix, "add"));
    let mag = b.add_node(task(app, AccKind::ElemMatrix, "sqrt"));
    let dir = b.add_node(task(app, AccKind::ElemMatrix, "atan2"));
    let cnm = b.add_node(task(app, AccKind::CannyNonMax, "nonmax"));
    let et = b.add_node(task(app, AccKind::EdgeTracking, "track"));
    for (f, t) in [
        (gray, gauss),
        (gauss, gx),
        (gauss, gy),
        (gx, sqx),
        (gy, sqy),
        (sqx, add),
        (sqy, add),
        (add, mag),
        (gx, dir),
        (gy, dir),
        (mag, cnm),
        (dir, cnm),
        (cnm, et),
    ] {
        b.add_edge(f, t)?;
    }
    b.build()
}

/// Richardson-Lucy deblur (Fig. 1c): ISP → grayscale, then per iteration
/// `conv(est, psf) → ratio (elem-matrix, reads the observed image from
/// DRAM) → conv(ratio, psf*) → est ×= correction`. A strictly linear
/// critical path, dominated by convolutions (Table II: only 3 % of its
/// time is data movement). 2 + 4·iters nodes.
pub(crate) fn deblur(iters: usize) -> Result<Dag, DagError> {
    let app = App::Deblur;
    let mut b = DagBuilder::new(app.name(), app.deadline());
    let (_isp, gray) = vision_frontend(&mut b, app)?;
    let mut est = gray;
    for i in 0..iters {
        let ca = b.add_node(task(app, AccKind::Convolution, &format!("conv_est{i}")));
        let ratio = b.add_node(
            task(app, AccKind::ElemMatrix, &format!("ratio{i}"))
                .with_dram_input_bytes(PLANE_BYTES), // the observed image
        );
        let cb = b.add_node(task(app, AccKind::Convolution, &format!("conv_corr{i}")));
        let upd = b.add_node(task(app, AccKind::ElemMatrix, &format!("update{i}")));
        for (f, t) in [(est, ca), (ca, ratio), (ratio, cb), (cb, upd), (est, upd)] {
            b.add_edge(f, t)?;
        }
        est = upd;
    }
    b.build()
}

/// Harris corner detection (Fig. 1d): ISP → grayscale → Sobel x/y →
/// products (xx, yy, xy) → Gaussian-smoothed sums (3 × conv 5×5) →
/// response = det(M) − k·trace(M)² → non-max. 17 nodes, 21 edges.
fn harris() -> Result<Dag, DagError> {
    let app = App::Harris;
    let mut b = DagBuilder::new(app.name(), app.deadline());
    let (_isp, gray) = vision_frontend(&mut b, app)?;
    let gx = b.add_node(conv3(app).with_label("H.sobel_x"));
    let gy = b.add_node(conv3(app).with_label("H.sobel_y"));
    let xx = b.add_node(task(app, AccKind::ElemMatrix, "xx"));
    let yy = b.add_node(task(app, AccKind::ElemMatrix, "yy"));
    let xy = b.add_node(task(app, AccKind::ElemMatrix, "xy"));
    let sxx = b.add_node(task(app, AccKind::Convolution, "gauss_xx"));
    let syy = b.add_node(task(app, AccKind::Convolution, "gauss_yy"));
    let sxy = b.add_node(task(app, AccKind::Convolution, "gauss_xy"));
    let m1 = b.add_node(task(app, AccKind::ElemMatrix, "sxx_syy"));
    let m2 = b.add_node(task(app, AccKind::ElemMatrix, "sxy_sq"));
    let det = b.add_node(task(app, AccKind::ElemMatrix, "det"));
    let tr = b.add_node(task(app, AccKind::ElemMatrix, "trace"));
    let tr2 = b.add_node(task(app, AccKind::ElemMatrix, "trace_sq"));
    let resp = b.add_node(task(app, AccKind::ElemMatrix, "response"));
    let hnm = b.add_node(task(app, AccKind::HarrisNonMax, "nonmax"));
    for (f, t) in [
        (gray, gx),
        (gray, gy),
        (gx, xx),
        (gy, yy),
        (gx, xy),
        (gy, xy),
        (xx, sxx),
        (yy, syy),
        (xy, sxy),
        (sxx, m1),
        (syy, m1),
        (sxy, m2),
        (m1, det),
        (m2, det),
        (sxx, tr),
        (syy, tr),
        (tr, tr2),
        (det, resp),
        (tr2, resp),
        (resp, hnm),
    ] {
        b.add_edge(f, t)?;
    }
    b.build()
}

/// An elem-matrix RNN cell node. `weights` adds always-DRAM input planes
/// (x vectors and weight matrices live in main memory).
fn em(app: App, op: &str, weights: u64) -> NodeSpec {
    task(app, AccKind::ElemMatrix, op).with_dram_input_bytes(weights * PLANE_BYTES)
}

/// GRU (Fig. 1e): 8 timesteps of 15 elem-matrix nodes — update gate z,
/// reset gate r (4 nodes each), candidate state (5), and the blended
/// hidden state (2). The hidden-state chain serializes timesteps; the
/// longest chain in a timestep is 9 nodes, matching §V-A's observation.
pub(crate) fn gru(timesteps: usize) -> Result<Dag, DagError> {
    let app = App::Gru;
    let mut b = DagBuilder::new(app.name(), app.deadline());
    let mut h_prev: Option<NodeId> = None;
    for t in 0..timesteps {
        // `gate` wires an h_{t-1} edge, or charges a DRAM read of h_0.
        let gate = |b: &mut DagBuilder,
                    op: String,
                    parents: &[NodeId],
                    w: u64,
                    h: bool|
         -> Result<NodeId, DagError> {
            let mut spec = em(app, &op, w);
            if h && h_prev.is_none() {
                let extra = spec.dram_input_bytes + PLANE_BYTES;
                spec = spec.with_dram_input_bytes(extra);
            }
            let n = b.add_node(spec);
            for &p in parents {
                b.add_edge(p, n)?;
            }
            if h {
                if let Some(hp) = h_prev {
                    b.add_edge(hp, n)?;
                }
            }
            Ok(n)
        };
        let z1 = gate(&mut b, format!("z1_{t}"), &[], 2, false)?;
        let z2 = gate(&mut b, format!("z2_{t}"), &[], 1, true)?;
        let z3 = gate(&mut b, format!("z3_{t}"), &[z1, z2], 0, false)?;
        let z4 = gate(&mut b, format!("z4_{t}"), &[z3], 0, false)?;
        let r1 = gate(&mut b, format!("r1_{t}"), &[], 2, false)?;
        let r2 = gate(&mut b, format!("r2_{t}"), &[], 1, true)?;
        let r3 = gate(&mut b, format!("r3_{t}"), &[r1, r2], 0, false)?;
        let r4 = gate(&mut b, format!("r4_{t}"), &[r3], 0, false)?;
        let c0 = gate(&mut b, format!("c0_{t}"), &[r4], 0, true)?;
        let c1 = gate(&mut b, format!("c1_{t}"), &[], 2, false)?;
        let c2 = gate(&mut b, format!("c2_{t}"), &[c0], 1, false)?;
        let c3 = gate(&mut b, format!("c3_{t}"), &[c1, c2], 0, false)?;
        let c4 = gate(&mut b, format!("c4_{t}"), &[c3], 0, false)?;
        let h1 = gate(&mut b, format!("h1_{t}"), &[z4, c4], 0, false)?;
        let h2 = gate(&mut b, format!("h2_{t}"), &[h1], 0, true)?;
        h_prev = Some(h2);
    }
    b.build()
}

/// LSTM (Fig. 1f): 8 timesteps of 17 elem-matrix nodes — gates i, f, o, g
/// as 3-node chains (W·x; fused U·h add; activation), the cell state
/// (3 nodes), and the hidden state (2).
pub(crate) fn lstm(timesteps: usize) -> Result<Dag, DagError> {
    let app = App::Lstm;
    let mut b = DagBuilder::new(app.name(), app.deadline());
    let mut h_prev: Option<NodeId> = None;
    let mut c_prev: Option<NodeId> = None;
    for t in 0..timesteps {
        let node = |b: &mut DagBuilder,
                    op: String,
                    parents: &[NodeId],
                    w: u64,
                    recur: Option<NodeId>,
                    first_step_dram: bool|
         -> Result<NodeId, DagError> {
            let mut spec = em(app, &op, w);
            if recur.is_none() && first_step_dram {
                let extra = spec.dram_input_bytes + PLANE_BYTES;
                spec = spec.with_dram_input_bytes(extra);
            }
            let n = b.add_node(spec);
            for &p in parents {
                b.add_edge(p, n)?;
            }
            if let Some(r) = recur {
                b.add_edge(r, n)?;
            }
            Ok(n)
        };
        let mut gates = Vec::new();
        for g in ["i", "f", "o", "g"] {
            let x1 = node(&mut b, format!("{g}1_{t}"), &[], 2, None, false)?;
            let x2 = node(&mut b, format!("{g}2_{t}"), &[x1], 1, h_prev, true)?;
            let act = node(&mut b, format!("{g}3_{t}"), &[x2], 0, None, false)?;
            gates.push(act);
        }
        let (i3, f3, o3, g3) = (gates[0], gates[1], gates[2], gates[3]);
        let c1 = node(&mut b, format!("c1_{t}"), &[f3], 0, c_prev, true)?;
        let c2 = node(&mut b, format!("c2_{t}"), &[i3, g3], 0, None, false)?;
        let c3 = node(&mut b, format!("c3_{t}"), &[c1, c2], 0, None, false)?;
        let h1 = node(&mut b, format!("h1_{t}"), &[c3], 0, None, false)?;
        let h2 = node(&mut b, format!("h2_{t}"), &[o3, h1], 0, None, false)?;
        h_prev = Some(h2);
        c_prev = Some(c3);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        let cases = [
            (App::Canny, 12, 14),
            (App::Deblur, 22, 26),
            (App::Gru, 120, 18 * 8 - 4),
            (App::Harris, 17, 21),
            (App::Lstm, 136, 21 * 8 - 5),
        ];
        for (app, nodes, edges) in cases {
            let d = app.dag();
            assert_eq!(d.len(), nodes, "{app} nodes");
            assert_eq!(d.edge_count(), edges, "{app} edges");
        }
    }

    /// Calibration: every application's total compute matches Table II to
    /// within rounding (< 0.01 %).
    #[test]
    fn compute_totals_match_table_ii() {
        for app in App::ALL {
            let total = app.dag().total_compute().as_us_f64();
            let target = app.table2_compute().as_us_f64();
            let err = (total - target).abs() / target;
            assert!(err < 1e-4, "{app}: {total:.2}us vs Table II {target:.2}us");
        }
    }

    /// No-forwarding memory volume sanity check against Table II's
    /// "Mem (no fwd)" column: our reconstruction's all-DRAM byte volume,
    /// at the calibrated effective bandwidth, should land within ~15 % of
    /// the paper's standalone memory time.
    #[test]
    fn no_forwarding_memory_time_near_table_ii() {
        let bw = relief_mem_bandwidth();
        let cases = [
            (App::Canny, 237.74),
            (App::Deblur, 509.80),
            (App::Gru, 3343.72),
            (App::Harris, 372.19),
            (App::Lstm, 3879.98),
        ];
        for (app, expect_us) in cases {
            let bytes = app.dag().total_bytes_no_forwarding();
            let t = Dur::for_bytes(bytes, bw).as_us_f64();
            let err = (t - expect_us).abs() / expect_us;
            assert!(err < 0.15, "{app}: modeled {t:.1}us vs Table II {expect_us}us");
        }
    }

    fn relief_mem_bandwidth() -> u64 {
        // Mirror of MemConfig::DEFAULT_DRAM_BW without a dev-dependency
        // cycle; asserted equal in the integration tests.
        6_458_000_000
    }

    #[test]
    fn rnn_apps_use_only_elem_matrix() {
        for app in [App::Gru, App::Lstm] {
            let d = app.dag();
            assert_eq!(d.distinct_acc_types(), 1, "{app}");
            assert!(d
                .nodes()
                .iter()
                .all(|n| n.acc == AccKind::ElemMatrix.type_id()));
        }
    }

    #[test]
    fn vision_apps_start_at_the_isp() {
        for app in [App::Canny, App::Deblur, App::Harris] {
            let d = app.dag();
            let roots: Vec<_> = d.roots().collect();
            assert_eq!(roots.len(), 1, "{app}");
            assert_eq!(d.node(roots[0]).acc, AccKind::Isp.type_id(), "{app}");
        }
    }

    #[test]
    fn deblur_is_a_linear_pipeline() {
        // Every node has at most 1 unfinished successor chain: max children
        // along est path is 2 (ca + update), but the graph's width stays
        // tiny and the critical path includes all 10 convolutions.
        let d = App::Deblur.dag();
        let timing = relief_dag::DagTiming::compute(&d, |n| d.node(n).compute);
        let cp = timing.critical_path().as_us_f64();
        let total = d.total_compute().as_us_f64();
        assert!(cp / total > 0.99, "deblur critical path must span ~all compute");
    }

    #[test]
    fn gru_longest_chain_is_nine_nodes_per_timestep() {
        // §V-A: RNN chains of up to 9 nodes. With unit runtimes the
        // critical path counts nodes: each timestep contributes a 9-node
        // chain (r2 -> r3 -> r4 -> c0 -> c2 -> c3 -> c4 -> h1 -> h2).
        let d = App::Gru.dag();
        let timing = relief_dag::DagTiming::compute(&d, |_| Dur::from_us(1));
        let cp = timing.critical_path().as_us_f64();
        assert_eq!(cp, 9.0 * 8.0, "got {cp}");
    }

    #[test]
    fn symbols_and_deadlines_match_table_v() {
        assert_eq!(App::from_symbol('C'), Some(App::Canny));
        assert_eq!(App::from_symbol('L'), Some(App::Lstm));
        assert_eq!(App::from_symbol('X'), None);
        assert_eq!(App::Gru.deadline(), Dur::from_ms(7));
        assert_eq!(App::Harris.deadline(), Dur::from_us(16_600));
        let symbols: Vec<_> = App::ALL.iter().map(|a| a.symbol()).collect();
        assert_eq!(symbols, vec!["C", "D", "G", "H", "L"]);
    }

    #[test]
    fn dags_are_deterministic() {
        for app in App::ALL {
            assert_eq!(*app.dag(), *app.dag(), "{app}");
        }
    }

    #[test]
    fn try_dag_matches_dag() {
        for app in App::ALL {
            assert_eq!(*app.try_dag().unwrap(), *app.dag(), "{app}");
        }
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;
    use relief_dag::NodeId;

    /// Table I scratchpad capacities accommodate every node's working set:
    /// inputs plus one output buffer fit each accelerator's SPAD (the
    /// second output partition holds the *previous* task's output, whose
    /// input region is no longer needed).
    #[test]
    fn working_sets_fit_scratchpads() {
        for app in App::ALL {
            let dag = app.dag();
            for id in dag.node_ids() {
                let spec = dag.node(id);
                let kind = AccKind::from_type_id(spec.acc).expect("app uses the 7 kinds");
                let working_set = dag.input_bytes(id) + spec.output_bytes;
                assert!(
                    working_set <= kind.spad_bytes(),
                    "{app} node {id} ({}): {working_set} B exceeds {} B of {kind}",
                    spec.label,
                    kind.spad_bytes()
                );
            }
        }
    }

    /// elem-matrix is the tight case: a 2-input node plus double-buffered
    /// output uses the SPAD exactly (2x64KiB in + 2x64KiB out = 256 KiB),
    /// matching Table I's 262,144 B.
    #[test]
    fn elem_matrix_spad_is_exactly_sized() {
        let two_in = 2 * PLANE_BYTES;
        let double_out = 2 * AccKind::ElemMatrix.output_bytes();
        assert_eq!(two_in + double_out, AccKind::ElemMatrix.spad_bytes());
    }

    /// Every vision app's critical path (with memory) is under its
    /// deadline, so Table V's positive solo laxities are structurally
    /// possible.
    #[test]
    fn critical_paths_leave_positive_laxity() {
        use relief_dag::DagTiming;
        // Mirror of MemConfig::DEFAULT_DRAM_BW (relief-mem is not a
        // workloads dependency); asserted equal in the accel tests.
        let bw = 6_458_000_000u64;
        for app in App::ALL {
            let dag = app.dag();
            let timing = DagTiming::compute(&dag, |n: NodeId| {
                let spec = dag.node(n);
                spec.compute + Dur::for_bytes(dag.input_bytes(n) + spec.output_bytes, bw)
            });
            assert!(
                timing.critical_path() < app.deadline(),
                "{app}: critical path {} >= deadline {}",
                timing.critical_path(),
                app.deadline()
            );
        }
    }
}
