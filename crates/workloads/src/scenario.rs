//! The paper's contention scenarios (§IV-C).
//!
//! * **Low**: each application alone.
//! * **Medium**: every pair of applications.
//! * **High**: every triple (mixes of four or more meet almost no
//!   deadlines and are not evaluated).
//! * **Continuous**: the high-contention triples, with each application
//!   re-instantiated in a loop, capped at 50 ms of simulated time.

use crate::apps::App;
use relief_accel::AppSpec;
use relief_sim::Time;
use std::fmt;

/// Continuous-contention simulation cap (§IV-C).
pub const CONTINUOUS_TIME_LIMIT: Time = Time::from_ms(50);

/// Contention level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Contention {
    /// Single applications.
    Low,
    /// All pairs.
    Medium,
    /// All triples.
    High,
    /// All triples, looping, for 50 ms.
    Continuous,
}

impl Contention {
    /// The four levels in paper order (Figs. 4–8 subfigures a–d).
    pub const ALL: [Contention; 4] =
        [Contention::Low, Contention::Medium, Contention::High, Contention::Continuous];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::Medium => "medium",
            Contention::High => "high",
            Contention::Continuous => "continuous",
        }
    }

    /// The application mixes of this level, in the paper's order
    /// (lexicographic by symbol).
    pub fn mixes(self) -> Vec<Mix> {
        let k = match self {
            Contention::Low => 1,
            Contention::Medium => 2,
            Contention::High | Contention::Continuous => 3,
        };
        combinations(&App::ALL, k)
            .into_iter()
            .map(|apps| Mix { apps, continuous: self == Contention::Continuous })
            .collect()
    }
}

impl fmt::Display for Contention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One application mix (e.g. `CDG`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    /// The applications, in symbol order.
    pub apps: Vec<App>,
    /// Whether each application loops (continuous contention).
    pub continuous: bool,
}

impl Mix {
    /// The mix's label as used in the paper's figures (e.g. `"CDG"`).
    pub fn label(&self) -> String {
        self.apps.iter().map(|a| a.symbol()).collect()
    }

    /// Builds the simulator workload for this mix. All applications arrive
    /// at t = 0; continuous mixes re-arrive on completion.
    pub fn workload(&self) -> Vec<AppSpec> {
        self.apps
            .iter()
            .map(|a| {
                if self.continuous {
                    AppSpec::continuous(a.symbol(), a.dag())
                } else {
                    AppSpec::once(a.symbol(), a.dag())
                }
            })
            .collect()
    }

    /// Total edges across the mix's DAGs — the denominator of Fig. 4 for
    /// run-to-completion scenarios.
    pub fn total_edges(&self) -> u64 {
        self.apps.iter().map(|a| a.dag().edge_count() as u64).sum()
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// All size-`k` combinations of `items`, preserving order.
fn combinations<T: Copy>(items: &[T], k: usize) -> Vec<Vec<T>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    if items.len() < k {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        for mut rest in combinations(&items[i + 1..], k - 1) {
            rest.insert(0, first);
            out.push(rest);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_counts_match_paper() {
        assert_eq!(Contention::Low.mixes().len(), 5);
        assert_eq!(Contention::Medium.mixes().len(), 10);
        assert_eq!(Contention::High.mixes().len(), 10);
        assert_eq!(Contention::Continuous.mixes().len(), 10);
    }

    #[test]
    fn mix_labels_match_figure_order() {
        let med: Vec<String> = Contention::Medium.mixes().iter().map(Mix::label).collect();
        assert_eq!(med, vec!["CD", "CG", "CH", "CL", "DG", "DH", "DL", "GH", "GL", "HL"]);
        let high: Vec<String> = Contention::High.mixes().iter().map(Mix::label).collect();
        assert_eq!(
            high,
            vec!["CDG", "CDH", "CDL", "CGH", "CGL", "CHL", "DGH", "DGL", "DHL", "GHL"]
        );
    }

    #[test]
    fn continuous_mixes_loop() {
        for mix in Contention::Continuous.mixes() {
            assert!(mix.continuous);
            assert!(mix.workload().iter().all(|a| a.repeat));
        }
        for mix in Contention::High.mixes() {
            assert!(!mix.continuous);
            assert!(mix.workload().iter().all(|a| !a.repeat));
        }
    }

    #[test]
    fn workload_symbols_match_apps() {
        let mix = &Contention::High.mixes()[0]; // CDG
        let syms: Vec<_> = mix.workload().iter().map(|a| a.symbol.clone()).collect();
        assert_eq!(syms, vec!["C", "D", "G"]);
        assert_eq!(mix.total_edges(), 14 + 26 + 140);
    }

    #[test]
    fn combinations_basics() {
        assert_eq!(combinations(&[1, 2, 3], 2), vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
        assert_eq!(combinations(&[1], 2), Vec::<Vec<i32>>::new());
        assert_eq!(combinations(&[1, 2], 0), vec![Vec::<i32>::new()]);
    }
}
