//! Parametric application variants.
//!
//! The paper fixes Richardson-Lucy at 5 iterations and both RNNs at a
//! sequence length of 8 "to have a representative input size balanced
//! with simulation time" (§IV-A). This simulator runs orders of magnitude
//! faster than gem5, so these knobs are exposed: deeper deblurs for
//! higher picture quality, longer sequences for longer utterances.
//!
//! Node compute times are the per-kernel Table I values (without the
//! standard configuration's Table II scale factor, which is only defined
//! for the paper's sizes).

use crate::apps;
use crate::error::WorkloadError;
use relief_dag::{Dag, DagError};
use relief_sim::Dur;
use std::sync::Arc;

/// Richardson-Lucy deblur with `iterations` refinement rounds
/// (the paper uses 5; more iterations sharpen more).
///
/// # Panics
///
/// Panics if `iterations` is zero. Fallible callers should prefer
/// [`try_deblur`].
///
/// # Examples
///
/// ```
/// use relief_workloads::variants::deblur;
/// assert_eq!(deblur(5, relief_sim::Dur::from_us(16_600)).len(), 22);
/// assert_eq!(deblur(10, relief_sim::Dur::from_ms(33)).len(), 42);
/// ```
pub fn deblur(iterations: usize, deadline: Dur) -> Arc<Dag> {
    unwrap_variant(try_deblur(iterations, deadline))
}

/// Fallible [`deblur`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParam`] when `iterations` is zero.
pub fn try_deblur(iterations: usize, deadline: Dur) -> Result<Arc<Dag>, WorkloadError> {
    if iterations == 0 {
        return Err(WorkloadError::InvalidParam("need at least one iteration".into()));
    }
    Ok(Arc::new(with_deadline(apps::deblur(iterations)?, deadline)?))
}

/// GRU with a custom sequence length (the paper uses 8).
///
/// # Panics
///
/// Panics if `timesteps` is zero. Fallible callers should prefer
/// [`try_gru`].
pub fn gru(timesteps: usize, deadline: Dur) -> Arc<Dag> {
    unwrap_variant(try_gru(timesteps, deadline))
}

/// Fallible [`gru`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParam`] when `timesteps` is zero.
pub fn try_gru(timesteps: usize, deadline: Dur) -> Result<Arc<Dag>, WorkloadError> {
    if timesteps == 0 {
        return Err(WorkloadError::InvalidParam("need at least one timestep".into()));
    }
    Ok(Arc::new(with_deadline(apps::gru(timesteps)?, deadline)?))
}

/// LSTM with a custom sequence length (the paper uses 8).
///
/// # Panics
///
/// Panics if `timesteps` is zero. Fallible callers should prefer
/// [`try_lstm`].
pub fn lstm(timesteps: usize, deadline: Dur) -> Arc<Dag> {
    unwrap_variant(try_lstm(timesteps, deadline))
}

/// Fallible [`lstm`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParam`] when `timesteps` is zero.
pub fn try_lstm(timesteps: usize, deadline: Dur) -> Result<Arc<Dag>, WorkloadError> {
    if timesteps == 0 {
        return Err(WorkloadError::InvalidParam("need at least one timestep".into()));
    }
    Ok(Arc::new(with_deadline(apps::lstm(timesteps)?, deadline)?))
}

/// Panicking adapter kept for the infallible convenience constructors.
fn unwrap_variant(result: Result<Arc<Dag>, WorkloadError>) -> Arc<Dag> {
    match result {
        Ok(dag) => dag,
        Err(e) => panic!("{e}"),
    }
}

/// Rebuilds `dag` with a different relative deadline.
fn with_deadline(dag: Dag, deadline: Dur) -> Result<Dag, DagError> {
    let mut b = relief_dag::DagBuilder::new(dag.name(), deadline);
    for spec in dag.nodes() {
        b.add_node(spec.clone());
    }
    for from in dag.node_ids() {
        for &to in dag.children(from) {
            b.add_edge(from, to)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_parameters() {
        assert_eq!(deblur(1, Dur::from_ms(1)).len(), 6);
        assert_eq!(deblur(8, Dur::from_ms(1)).len(), 2 + 32);
        assert_eq!(gru(1, Dur::from_ms(1)).len(), 15);
        assert_eq!(gru(16, Dur::from_ms(1)).len(), 240);
        assert_eq!(lstm(2, Dur::from_ms(1)).len(), 34);
    }

    #[test]
    fn deadline_is_applied() {
        let d = gru(4, Dur::from_ms(3));
        assert_eq!(d.relative_deadline(), Dur::from_ms(3));
    }

    #[test]
    fn structure_matches_standard_apps() {
        // 8 timesteps of the variant equals the calibrated App modulo the
        // per-app compute scale factor.
        let variant = gru(8, crate::App::Gru.deadline());
        let standard = crate::App::Gru.dag();
        assert_eq!(variant.len(), standard.len());
        assert_eq!(variant.edge_count(), standard.edge_count());
    }

    #[test]
    #[should_panic(expected = "at least one timestep")]
    fn zero_timesteps_rejected() {
        gru(0, Dur::from_ms(1));
    }

    #[test]
    fn try_variants_return_typed_errors() {
        use crate::error::WorkloadError;
        assert!(matches!(
            try_deblur(0, Dur::from_ms(1)),
            Err(WorkloadError::InvalidParam(_))
        ));
        assert!(matches!(try_gru(0, Dur::from_ms(1)), Err(WorkloadError::InvalidParam(_))));
        assert!(matches!(try_lstm(0, Dur::from_ms(1)), Err(WorkloadError::InvalidParam(_))));
        assert_eq!(*try_gru(4, Dur::from_ms(3)).unwrap(), *gru(4, Dur::from_ms(3)));
    }
}
