//! Random task-graph generation for property-based testing.

use crate::error::WorkloadError;
use relief_dag::{AccTypeId, Dag, DagBuilder, NodeId, NodeSpec};
use relief_sim::{Dur, SplitMix64};
use std::sync::Arc;

/// Parameters for [`random_dag`].
#[derive(Debug, Clone, Copy)]
pub struct SyntheticParams {
    /// Number of nodes (≥ 1).
    pub nodes: usize,
    /// Number of accelerator types nodes are drawn from (≥ 1).
    pub acc_types: u32,
    /// Probability of an edge between any forward-ordered node pair.
    pub edge_prob: f64,
    /// Compute-time range in microseconds.
    pub compute_us: (u64, u64),
    /// Output-size range in bytes.
    pub output_bytes: (u64, u64),
    /// Relative deadline.
    pub deadline: Dur,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            nodes: 12,
            acc_types: 3,
            edge_prob: 0.25,
            compute_us: (5, 50),
            output_bytes: (1024, 65_536),
            deadline: Dur::from_ms(10),
        }
    }
}

/// Generates a random acyclic task graph: nodes are ordered and edges only
/// point forward, so the result is always a valid DAG. Every non-first
/// node receives at least one parent, keeping the graph connected enough
/// to exercise forwarding.
///
/// # Examples
///
/// ```
/// use relief_workloads::synthetic::{random_dag, SyntheticParams};
/// let dag = random_dag(&SyntheticParams::default(), 42);
/// assert_eq!(dag.len(), 12);
/// assert!(dag.edge_count() >= 11); // connected
/// ```
///
/// # Panics
///
/// Panics if `params.nodes` or `params.acc_types` is zero, or the edge
/// probability is outside `[0, 1]`. Fallible callers should prefer
/// [`try_random_dag`].
pub fn random_dag(params: &SyntheticParams, seed: u64) -> Arc<Dag> {
    match try_random_dag(params, seed) {
        Ok(dag) => dag,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`random_dag`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParam`] for zero nodes or accelerator
/// types or a non-finite/out-of-range edge probability, and propagates
/// any [`relief_dag::DagError`] (unreachable: edges only point forward).
pub fn try_random_dag(
    params: &SyntheticParams,
    seed: u64,
) -> Result<Arc<Dag>, WorkloadError> {
    if params.nodes == 0 {
        return Err(WorkloadError::InvalidParam("need at least one node".into()));
    }
    if params.acc_types == 0 {
        return Err(WorkloadError::InvalidParam(
            "need at least one accelerator type".into(),
        ));
    }
    if !params.edge_prob.is_finite() || !(0.0..=1.0).contains(&params.edge_prob) {
        return Err(WorkloadError::InvalidParam(format!(
            "edge probability {} outside [0, 1]",
            params.edge_prob
        )));
    }
    let mut rng = SplitMix64::new(seed);
    let mut b = DagBuilder::new(format!("synthetic-{seed}"), params.deadline);
    let mut ids: Vec<NodeId> = Vec::with_capacity(params.nodes);
    for _ in 0..params.nodes {
        let acc = AccTypeId(rng.u32_below(params.acc_types));
        let compute = Dur::from_us(rng.u64_inclusive(params.compute_us.0, params.compute_us.1));
        let out = rng.u64_inclusive(params.output_bytes.0, params.output_bytes.1);
        ids.push(b.add_node(NodeSpec::new(acc, compute).with_output_bytes(out)));
    }
    for j in 1..params.nodes {
        let mut has_parent = false;
        for i in 0..j {
            if rng.chance(params.edge_prob) {
                b.add_edge(ids[i], ids[j])?;
                has_parent = true;
            }
        }
        if !has_parent {
            let i = rng.usize_below(j);
            b.add_edge(ids[i], ids[j])?;
        }
    }
    Ok(Arc::new(b.build()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = SyntheticParams::default();
        assert_eq!(*random_dag(&p, 7), *random_dag(&p, 7));
        assert_ne!(*random_dag(&p, 7), *random_dag(&p, 8));
    }

    #[test]
    fn respects_parameters() {
        let p = SyntheticParams {
            nodes: 30,
            acc_types: 2,
            edge_prob: 0.1,
            compute_us: (1, 2),
            output_bytes: (64, 128),
            deadline: Dur::from_ms(1),
        };
        let d = random_dag(&p, 1);
        assert_eq!(d.len(), 30);
        assert!(d.distinct_acc_types() <= 2);
        assert_eq!(d.relative_deadline(), Dur::from_ms(1));
        for spec in d.nodes() {
            assert!((64..=128).contains(&spec.output_bytes));
        }
    }

    #[test]
    fn every_non_root_has_a_parent() {
        let d = random_dag(&SyntheticParams::default(), 99);
        let roots: Vec<_> = d.roots().collect();
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn single_node_graph() {
        let p = SyntheticParams { nodes: 1, ..Default::default() };
        let d = random_dag(&p, 0);
        assert_eq!(d.len(), 1);
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn bad_params_are_typed_errors() {
        use crate::error::WorkloadError;
        let zero_nodes = SyntheticParams { nodes: 0, ..Default::default() };
        assert!(matches!(
            try_random_dag(&zero_nodes, 0),
            Err(WorkloadError::InvalidParam(_))
        ));
        let bad_prob = SyntheticParams { edge_prob: f64::NAN, ..Default::default() };
        assert!(matches!(
            try_random_dag(&bad_prob, 0),
            Err(WorkloadError::InvalidParam(_))
        ));
        let p = SyntheticParams::default();
        assert_eq!(*try_random_dag(&p, 7).unwrap(), *random_dag(&p, 7));
    }
}
