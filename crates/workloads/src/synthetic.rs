//! Random task-graph generation for property-based testing.

use relief_dag::{AccTypeId, Dag, DagBuilder, NodeId, NodeSpec};
use relief_sim::{Dur, SplitMix64};
use std::sync::Arc;

/// Parameters for [`random_dag`].
#[derive(Debug, Clone, Copy)]
pub struct SyntheticParams {
    /// Number of nodes (≥ 1).
    pub nodes: usize,
    /// Number of accelerator types nodes are drawn from (≥ 1).
    pub acc_types: u32,
    /// Probability of an edge between any forward-ordered node pair.
    pub edge_prob: f64,
    /// Compute-time range in microseconds.
    pub compute_us: (u64, u64),
    /// Output-size range in bytes.
    pub output_bytes: (u64, u64),
    /// Relative deadline.
    pub deadline: Dur,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            nodes: 12,
            acc_types: 3,
            edge_prob: 0.25,
            compute_us: (5, 50),
            output_bytes: (1024, 65_536),
            deadline: Dur::from_ms(10),
        }
    }
}

/// Generates a random acyclic task graph: nodes are ordered and edges only
/// point forward, so the result is always a valid DAG. Every non-first
/// node receives at least one parent, keeping the graph connected enough
/// to exercise forwarding.
///
/// # Examples
///
/// ```
/// use relief_workloads::synthetic::{random_dag, SyntheticParams};
/// let dag = random_dag(&SyntheticParams::default(), 42);
/// assert_eq!(dag.len(), 12);
/// assert!(dag.edge_count() >= 11); // connected
/// ```
///
/// # Panics
///
/// Panics if `params.nodes` or `params.acc_types` is zero.
pub fn random_dag(params: &SyntheticParams, seed: u64) -> Arc<Dag> {
    assert!(params.nodes >= 1, "need at least one node");
    assert!(params.acc_types >= 1, "need at least one accelerator type");
    let mut rng = SplitMix64::new(seed);
    let mut b = DagBuilder::new(format!("synthetic-{seed}"), params.deadline);
    let mut ids: Vec<NodeId> = Vec::with_capacity(params.nodes);
    for _ in 0..params.nodes {
        let acc = AccTypeId(rng.u32_below(params.acc_types));
        let compute = Dur::from_us(rng.u64_inclusive(params.compute_us.0, params.compute_us.1));
        let out = rng.u64_inclusive(params.output_bytes.0, params.output_bytes.1);
        ids.push(b.add_node(NodeSpec::new(acc, compute).with_output_bytes(out)));
    }
    for j in 1..params.nodes {
        let mut has_parent = false;
        for i in 0..j {
            if rng.chance(params.edge_prob) {
                b.add_edge(ids[i], ids[j]).expect("forward edge is valid");
                has_parent = true;
            }
        }
        if !has_parent {
            let i = rng.usize_below(j);
            b.add_edge(ids[i], ids[j]).expect("forward edge is valid");
        }
    }
    Arc::new(b.build().expect("forward-ordered edges are acyclic"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = SyntheticParams::default();
        assert_eq!(*random_dag(&p, 7), *random_dag(&p, 7));
        assert_ne!(*random_dag(&p, 7), *random_dag(&p, 8));
    }

    #[test]
    fn respects_parameters() {
        let p = SyntheticParams {
            nodes: 30,
            acc_types: 2,
            edge_prob: 0.1,
            compute_us: (1, 2),
            output_bytes: (64, 128),
            deadline: Dur::from_ms(1),
        };
        let d = random_dag(&p, 1);
        assert_eq!(d.len(), 30);
        assert!(d.distinct_acc_types() <= 2);
        assert_eq!(d.relative_deadline(), Dur::from_ms(1));
        for spec in d.nodes() {
            assert!((64..=128).contains(&spec.output_bytes));
        }
    }

    #[test]
    fn every_non_root_has_a_parent() {
        let d = random_dag(&SyntheticParams::default(), 99);
        let roots: Vec<_> = d.roots().collect();
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn single_node_graph() {
        let p = SyntheticParams { nodes: 1, ..Default::default() };
        let d = random_dag(&p, 0);
        assert_eq!(d.len(), 1);
        assert_eq!(d.edge_count(), 0);
    }
}
