//! Statistics, energy modeling, and reporting for RELIEF experiments.
//!
//! The simulator in `relief-accel` fills a [`RunStats`] per run; the bench
//! harness aggregates runs with [`summary`] helpers and renders the paper's
//! tables with [`report::Table`].
//!
//! # Examples
//!
//! ```
//! use relief_metrics::summary::geometric_mean;
//! let g = geometric_mean([2.0, 8.0].into_iter());
//! assert!((g - 4.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


pub mod energy;
pub mod hist;
pub mod reconcile;
pub mod report;
pub mod stats;
pub mod summary;

pub use energy::{EnergyBreakdown, EnergyModel};
pub use hist::Histogram;
pub use reconcile::{reconcile, Mismatch};
pub use stats::{
    AppStats, ClassServiceStats, FaultStats, RunStats, ServiceStats, TrafficStats,
    SERVICE_CLASSES,
};

// Thread-safety audit: per-run statistics are the campaign engine's
// cross-thread output payload; keep them `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RunStats>();
    assert_send_sync::<AppStats>();
    assert_send_sync::<TrafficStats>();
    assert_send_sync::<FaultStats>();
    assert_send_sync::<ServiceStats>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<Mismatch>();
};
