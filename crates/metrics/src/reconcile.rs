//! Event/stats reconciliation.
//!
//! The simulator maintains two independent bookkeeping systems: the
//! counters inside [`RunStats`] (incremented inline by the SoC simulator)
//! and the structured event stream of `relief-trace` (emitted by the
//! instrumentation hooks). [`reconcile`] folds an event stream's
//! [`EventCounters`] against a run's [`RunStats`] and reports every field
//! where the two disagree — if they do, one of the paths is lying, which
//! is exactly the kind of bug a tracing layer tends to hide.
//!
//! Equality is only guaranteed for *drained* runs (no time-limit
//! truncation) observed through a lossless sink (no ring-buffer
//! eviction): the transfer engine attributes bytes at `begin` time while
//! `DmaEnd` events attribute them at completion, so a truncated run can
//! legitimately disagree on byte totals.

use crate::stats::RunStats;
use relief_trace::EventCounters;
use std::fmt;

/// One field where event-derived and simulator-maintained counts differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Which counter disagreed.
    pub field: &'static str,
    /// The value derived from the trace event stream.
    pub from_events: u64,
    /// The value reported by [`RunStats`].
    pub from_stats: u64,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: events say {}, stats say {}",
            self.field, self.from_events, self.from_stats
        )
    }
}

/// Compares an event stream's counters against a run's statistics,
/// returning every disagreement (empty means consistent).
///
/// # Examples
///
/// ```
/// use relief_metrics::{reconcile, RunStats};
/// use relief_trace::EventCounters;
/// assert!(reconcile(&EventCounters::default(), &RunStats::default()).is_empty());
/// ```
#[must_use]
pub fn reconcile(counters: &EventCounters, stats: &RunStats) -> Vec<Mismatch> {
    let nodes: u64 = stats.apps.values().map(|a| a.nodes_completed).sum();
    let dags: u64 = stats.apps.values().map(|a| a.dags_completed).sum();
    let dags_met: u64 = stats.apps.values().map(|a| a.dag_deadlines_met).sum();
    let checks: [(&'static str, u64, u64); 26] = [
        ("tasks_completed", counters.tasks_completed, nodes),
        ("dags_done", counters.dags_done, dags),
        ("dags_met", counters.dags_met, dags_met),
        ("forwards", counters.forwards, stats.forwards()),
        ("colocations", counters.colocations, stats.colocations()),
        ("dram_read_bytes", counters.dram_read_bytes, stats.traffic.dram_read_bytes),
        ("dram_write_bytes", counters.dram_write_bytes, stats.traffic.dram_write_bytes),
        ("spad_to_spad_bytes", counters.spad_to_spad_bytes, stats.traffic.spad_to_spad_bytes),
        ("task_faults", counters.task_faults, stats.faults.task_faults),
        ("task_retries", counters.task_retries, stats.faults.task_retries),
        ("tasks_aborted", counters.tasks_aborted, stats.faults.tasks_aborted),
        ("dma_faults", counters.dma_faults, stats.faults.dma_faults),
        ("unit_quarantines", counters.unit_quarantines, stats.faults.unit_quarantines),
        (
            "fault_attributed_misses",
            counters.fault_attributed_misses,
            stats.faults.fault_attributed_misses,
        ),
        ("stream_arrivals", counters.stream_arrivals, stats.service.arrivals()),
        ("requests_admitted", counters.requests_admitted, stats.service.admitted()),
        ("requests_shed_bucket", counters.requests_shed_bucket, stats.service.shed_bucket()),
        (
            "requests_shed_capacity",
            counters.requests_shed_capacity,
            stats.service.shed_capacity(),
        ),
        ("requests_completed", counters.requests_completed, stats.service.completed()),
        ("ecc_faults", counters.ecc_faults, stats.faults.ecc_faults),
        (
            "dma_cancels",
            counters.dma_cancels,
            stats.faults.forward_invalidations + stats.service.timeout_cancelled_xfers,
        ),
        ("channel_outages", counters.channel_outages, stats.faults.channel_outages),
        ("requests_shed_breaker", counters.requests_shed_breaker, stats.service.shed_breaker()),
        ("requests_timed_out", counters.requests_timed_out, stats.service.timed_out()),
        ("hedges_launched", counters.hedges_launched, stats.service.hedged()),
        ("breaker_closes", counters.breaker_closes, stats.service.open_hist.count()),
    ];
    checks
        .into_iter()
        .filter(|&(_, ev, st)| ev != st)
        .map(|(field, from_events, from_stats)| Mismatch { field, from_events, from_stats })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{AppStats, TrafficStats};

    fn consistent_pair() -> (EventCounters, RunStats) {
        let counters = EventCounters {
            tasks_completed: 5,
            dags_done: 1,
            dags_met: 1,
            forwards: 2,
            colocations: 1,
            dram_read_bytes: 4096,
            dram_write_bytes: 1024,
            spad_to_spad_bytes: 2048,
            ..EventCounters::default()
        };
        let mut stats = RunStats {
            traffic: TrafficStats {
                dram_read_bytes: 4096,
                dram_write_bytes: 1024,
                spad_to_spad_bytes: 2048,
                ..TrafficStats::default()
            },
            ..RunStats::default()
        };
        stats.apps.insert(
            "A".into(),
            AppStats {
                name: "A".into(),
                nodes_completed: 5,
                dags_completed: 1,
                dag_deadlines_met: 1,
                forwards: 2,
                colocations: 1,
                ..AppStats::default()
            },
        );
        (counters, stats)
    }

    #[test]
    fn consistent_run_reports_nothing() {
        let (counters, stats) = consistent_pair();
        assert!(reconcile(&counters, &stats).is_empty());
    }

    #[test]
    fn fault_counters_reconcile() {
        let (mut counters, mut stats) = consistent_pair();
        counters.task_faults = 3;
        counters.task_retries = 2;
        counters.tasks_aborted = 1;
        counters.dma_faults = 4;
        counters.unit_quarantines = 1;
        counters.fault_attributed_misses = 1;
        stats.faults.task_faults = 3;
        stats.faults.task_retries = 2;
        stats.faults.tasks_aborted = 1;
        stats.faults.dma_faults = 4;
        stats.faults.unit_quarantines = 1;
        stats.faults.fault_attributed_misses = 1;
        assert!(reconcile(&counters, &stats).is_empty());
        stats.faults.dma_faults = 5;
        let mismatches = reconcile(&counters, &stats);
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].field, "dma_faults");
    }

    #[test]
    fn service_counters_reconcile() {
        let (mut counters, mut stats) = consistent_pair();
        counters.stream_arrivals = 12;
        counters.requests_admitted = 9;
        counters.requests_shed_bucket = 1;
        counters.requests_shed_capacity = 2;
        counters.requests_completed = 9;
        stats.service.classes[0].arrivals = 7;
        stats.service.classes[2].arrivals = 5;
        stats.service.classes[0].admitted = 6;
        stats.service.classes[2].admitted = 3;
        stats.service.classes[0].shed_bucket = 1;
        stats.service.classes[2].shed_capacity = 2;
        stats.service.classes[0].completed = 6;
        stats.service.classes[2].completed = 3;
        assert!(reconcile(&counters, &stats).is_empty());
        stats.service.classes[2].completed = 2;
        let mismatches = reconcile(&counters, &stats);
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].field, "requests_completed");
    }

    #[test]
    fn chaos_counters_reconcile() {
        let (mut counters, mut stats) = consistent_pair();
        counters.ecc_faults = 2;
        counters.dma_cancels = 3;
        counters.channel_outages = 4;
        counters.requests_shed_breaker = 5;
        counters.requests_timed_out = 2;
        counters.hedges_launched = 1;
        counters.breaker_closes = 1;
        stats.faults.ecc_faults = 2;
        stats.faults.forward_invalidations = 2;
        stats.faults.channel_outages = 4;
        stats.service.timeout_cancelled_xfers = 1;
        stats.service.classes[1].shed_breaker = 5;
        stats.service.classes[1].timed_out = 2;
        stats.service.classes[1].hedged = 1;
        stats.service.open_hist = crate::hist::Histogram::new(1_000, 8);
        stats.service.open_hist.record(500);
        assert!(reconcile(&counters, &stats).is_empty());
        stats.faults.forward_invalidations = 3;
        let mismatches = reconcile(&counters, &stats);
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].field, "dma_cancels");
    }

    #[test]
    fn each_disagreement_is_reported() {
        let (mut counters, stats) = consistent_pair();
        counters.forwards += 1;
        counters.dram_read_bytes -= 100;
        let mismatches = reconcile(&counters, &stats);
        assert_eq!(mismatches.len(), 2);
        assert_eq!(mismatches[0].field, "forwards");
        assert_eq!(mismatches[0].from_events, 3);
        assert_eq!(mismatches[0].from_stats, 2);
        assert_eq!(mismatches[1].field, "dram_read_bytes");
        assert_eq!(
            mismatches[1].to_string(),
            "dram_read_bytes: events say 3996, stats say 4096"
        );
    }
}
