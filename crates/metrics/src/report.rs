//! Minimal fixed-width table rendering for the experiment binaries.
//!
//! Each paper table/figure binary prints rows through a [`Table`], so output
//! across experiments is uniform and diff-friendly.

use std::fmt::Write as _;

/// A simple left-aligned fixed-width text table.
///
/// # Examples
///
/// ```
/// use relief_metrics::report::Table;
/// let mut t = Table::new(vec!["mix".into(), "FCFS".into(), "RELIEF".into()]);
/// t.row(vec!["CDG".into(), "41.2".into(), "78.9".into()]);
/// let s = t.render();
/// assert!(s.contains("RELIEF"));
/// assert!(s.contains("CDG"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table { header, rows: Vec::new() }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Table::new(cols.iter().map(|c| c.to_string()).collect())
    }

    /// Appends one row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Appends a row of numbers formatted with `precision` decimals after a
    /// leading label.
    pub fn num_row(&mut self, label: &str, values: &[f64], precision: usize) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| {
            if v.is_infinite() {
                "inf".to_string()
            } else {
                format!("{v:.precision$}")
            }
        }));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{c:<w$}{sep}", w = width[i]);
            }
        };
        line(&self.header, &mut out);
        let rule: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_columns(&["a", "bb"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.row(vec!["only-one".into()]);
        t.row(vec!["1".into(), "2".into(), "extra".into()]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains("extra"));
    }

    #[test]
    fn num_row_formats() {
        let mut t = Table::with_columns(&["p", "v", "w"]);
        t.num_row("RELIEF", &[1.23456, f64::INFINITY], 2);
        let s = t.render();
        assert!(s.contains("1.23"));
        assert!(s.contains("inf"));
    }
}
