//! Fixed-bin latency histogram with an overflow bucket.
//!
//! The service mode records one latency sample per completed node and one
//! sojourn sample per completed DAG instance under sustained load — far
//! too many to keep raw like `AppStats::dag_runtimes` does for closed
//! runs. A [`Histogram`] keeps O(bins) state with deterministic quantile
//! estimates: fixed-width picosecond bins plus one overflow bucket that
//! tracks its own maximum, so p999 stays meaningful even when the tail
//! escapes the binned range.
//!
//! Merging is exact and associative (bins add element-wise), which is what
//! lets the campaign engine collect per-worker results in spec order and
//! still render byte-identical tables at any `--jobs` level.

use std::fmt;

/// A fixed-bin histogram over `u64` picosecond samples.
///
/// Bin `i` covers `[i * bin_width_ps, (i + 1) * bin_width_ps)`; samples at
/// or past `bins * bin_width_ps` land in the overflow bucket. The
/// [`Default`] histogram is *unconfigured* (zero bins): it still counts,
/// sums and tracks the maximum — every sample simply overflows — and it
/// adopts the other side's layout on [`merge`](Histogram::merge).
#[derive(Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    /// Width of each bin, picoseconds (0 = unconfigured).
    bin_width_ps: u64,
    /// Per-bin sample counts.
    counts: Vec<u64>,
    /// Samples past the last bin.
    overflow: u64,
    /// Total samples recorded.
    total: u64,
    /// Saturating sum of all samples (for the mean).
    sum_ps: u64,
    /// Largest sample seen.
    max_ps: u64,
}

/// Compact `Debug`: histograms live inside `RunStats`, whose `{:?}`
/// rendering is campaign stdout — a 600-element bin dump would swamp it.
impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("p50", &self.quantile_ps(0.50))
            .field("p99", &self.quantile_ps(0.99))
            .field("p999", &self.quantile_ps(0.999))
            .field("max_ps", &self.max_ps)
            .field("overflow", &self.overflow)
            .finish()
    }
}

impl Histogram {
    /// A histogram of `bins` buckets of `bin_width_ps` each. Zero values
    /// for either produce the unconfigured (all-overflow) layout.
    #[must_use]
    pub fn new(bin_width_ps: u64, bins: usize) -> Self {
        if bin_width_ps == 0 || bins == 0 {
            return Histogram::default();
        }
        Histogram { bin_width_ps, counts: vec![0; bins], ..Histogram::default() }
    }

    /// Records one sample.
    pub fn record(&mut self, sample_ps: u64) {
        self.total += 1;
        self.sum_ps = self.sum_ps.saturating_add(sample_ps);
        self.max_ps = self.max_ps.max(sample_ps);
        if self.bin_width_ps == 0 {
            self.overflow += 1;
            return;
        }
        let bin = (sample_ps / self.bin_width_ps) as usize;
        match self.counts.get_mut(bin) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples that fell past the binned range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Largest recorded sample; 0 when empty.
    #[must_use]
    pub fn max_ps(&self) -> u64 {
        self.max_ps
    }

    /// Mean sample, picoseconds; `None` when empty.
    #[must_use]
    pub fn mean_ps(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum_ps as f64 / self.total as f64)
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), picoseconds, by linear
    /// interpolation inside the covering bin; `None` when empty.
    ///
    /// The rank is `ceil(q · total)` clamped to `[1, total]`. When the
    /// rank lands in the overflow bucket the estimate is the tracked
    /// maximum — a deliberate overestimate that keeps tail quantiles
    /// monotone instead of silently capping at the binned range.
    #[must_use]
    pub fn quantile_ps(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank <= cum + c {
                let lo = i as u64 * self.bin_width_ps;
                let within = (rank - cum) as f64 / c as f64;
                return Some(lo + (self.bin_width_ps as f64 * within) as u64);
            }
            cum += c;
        }
        Some(self.max_ps)
    }

    /// Merges another histogram's samples into this one, exactly.
    ///
    /// An unconfigured side adopts the other's layout, so `Default` is the
    /// merge identity; equal layouts add bin-wise, which makes the
    /// operation associative — the property parallel collection relies on.
    ///
    /// # Panics
    ///
    /// When both histograms are configured with different layouts
    /// (bin width or bin count): merging those would silently rebin.
    pub fn merge(&mut self, other: &Histogram) {
        if other.bin_width_ps != 0 {
            if self.bin_width_ps == 0 {
                // Adopt the configured layout; our existing samples (if
                // any) were all overflow and stay that way.
                self.bin_width_ps = other.bin_width_ps;
                self.counts = vec![0; other.counts.len()];
            }
            assert_eq!(
                (self.bin_width_ps, self.counts.len()),
                (other.bin_width_ps, other.counts.len()),
                "histogram layouts must match to merge"
            );
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum_ps = self.sum_ps.saturating_add(other.sum_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }

    /// Decomposes the histogram into its raw fields, in declaration
    /// order: `(bin_width_ps, counts, overflow, total, sum_ps, max_ps)`.
    /// Paired with [`from_parts`](Histogram::from_parts) so external
    /// serializers (the persistent campaign cache) can round-trip a
    /// histogram exactly without the fields being public.
    #[must_use]
    pub fn to_parts(&self) -> (u64, &[u64], u64, u64, u64, u64) {
        (self.bin_width_ps, &self.counts, self.overflow, self.total, self.sum_ps, self.max_ps)
    }

    /// Reassembles a histogram from [`to_parts`](Histogram::to_parts)
    /// output. The parts are adopted verbatim — round-tripping is exact,
    /// including the unconfigured (zero-width) layout.
    #[must_use]
    pub fn from_parts(
        bin_width_ps: u64,
        counts: Vec<u64>,
        overflow: u64,
        total: u64,
        sum_ps: u64,
        max_ps: u64,
    ) -> Self {
        Histogram { bin_width_ps, counts, overflow, total, sum_ps, max_ps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new(100, 10);
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(100, 10);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ps(0.5), None);
        assert_eq!(h.mean_ps(), None);
        assert_eq!(h.max_ps(), 0);
    }

    #[test]
    fn quantile_interpolates_at_bin_edges() {
        // 4 samples in bin [100, 200): ranks 1..4 split the bin in
        // quarters, and rank 4 (q=1.0) lands exactly on the upper edge.
        let h = filled(&[150, 150, 150, 150]);
        assert_eq!(h.quantile_ps(0.25), Some(125));
        assert_eq!(h.quantile_ps(0.5), Some(150));
        assert_eq!(h.quantile_ps(1.0), Some(200));
        // q → 0 clamps to rank 1, never rank 0.
        assert_eq!(h.quantile_ps(0.0), Some(125));
        // Two bins: the median of {50, 250} sits at the top of bin 0.
        let h = filled(&[50, 250]);
        assert_eq!(h.quantile_ps(0.5), Some(100));
        assert_eq!(h.quantile_ps(1.0), Some(300));
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = filled(&[10, 120, 340, 560, 780, 901, 950, 999]);
        let mut prev = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile_ps(q).unwrap();
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn overflow_bucket_tracks_tail() {
        let mut h = Histogram::new(100, 10); // covers [0, 1000)
        h.record(500);
        h.record(5_000);
        h.record(9_999);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ps(), 9_999);
        // Low ranks still interpolated from the binned sample (rank 1 of
        // 3 sits at the top of its one-sample bin [500, 600))...
        assert_eq!(h.quantile_ps(0.3), Some(600));
        // ...but tail ranks fall in overflow and report the max.
        assert_eq!(h.quantile_ps(0.9), Some(9_999));
        assert_eq!(h.quantile_ps(1.0), Some(9_999));
        // The boundary sample 1000 overflows (bins are half-open).
        let mut h = Histogram::new(100, 10);
        h.record(1_000);
        assert_eq!(h.overflow(), 1);
        h.record(999);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn unconfigured_histogram_overflows_everything() {
        let mut h = Histogram::default();
        h.record(42);
        h.record(7);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.quantile_ps(0.5), Some(42));
        assert_eq!(h.mean_ps(), Some(24.5));
    }

    #[test]
    fn single_sample_pins_every_quantile_to_its_bin() {
        // One sample: every q clamps to rank 1, and within = 1/1 puts the
        // estimate at the upper edge of the sample's bin [100, 200).
        let h = filled(&[150]);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ps(q), Some(200), "q={q}");
        }
        assert_eq!(h.mean_ps(), Some(150.0));
        assert_eq!(h.max_ps(), 150);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn all_samples_in_overflow_report_the_tracked_max() {
        // Configured layout [0, 1000), every sample past it: the binned
        // scan finds nothing and every quantile falls through to max_ps.
        let h = filled(&[1_000, 5_000, 123_456]);
        assert_eq!(h.overflow(), 3);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile_ps(q), Some(123_456), "q={q}");
        }
        assert_eq!(h.max_ps(), 123_456);
    }

    #[test]
    fn merge_with_empty_configured_histogram_is_identity() {
        // Unlike Default (unconfigured), an empty *configured* histogram
        // has a layout; merging it in either direction must not disturb
        // counts, quantiles, or layout.
        let a = filled(&[10, 110, 950, 2_000]);
        let empty = Histogram::new(100, 10);
        let mut left = a.clone();
        left.merge(&empty);
        assert_eq!(left, a);
        let mut right = empty;
        right.merge(&a);
        assert_eq!(right, a);
        assert_eq!(right.quantile_ps(0.5), a.quantile_ps(0.5));
    }

    #[test]
    fn merge_is_exact_and_associative() {
        let a = filled(&[10, 110, 210]);
        let b = filled(&[310, 410, 2_000]);
        let c = filled(&[510, 610]);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // And the merge equals recording every sample in one histogram.
        let all = filled(&[10, 110, 210, 310, 410, 2_000, 510, 610]);
        assert_eq!(left, all);
        assert_eq!(left.count(), 8);
        assert_eq!(left.overflow(), 1);
    }

    #[test]
    fn default_is_merge_identity() {
        let a = filled(&[10, 110, 950]);
        let mut left = Histogram::default();
        left.merge(&a);
        assert_eq!(left, a);
        let mut right = a.clone();
        right.merge(&Histogram::default());
        assert_eq!(right, a);
    }

    #[test]
    #[should_panic(expected = "histogram layouts must match")]
    fn mismatched_layouts_refuse_to_merge() {
        let mut a = Histogram::new(100, 10);
        a.merge(&Histogram::new(50, 10));
    }

    #[test]
    fn parts_round_trip_exactly() {
        let h = filled(&[10, 150, 150, 950, 2_000, u64::MAX]);
        let (w, counts, overflow, total, sum, max) = h.to_parts();
        let back = Histogram::from_parts(w, counts.to_vec(), overflow, total, sum, max);
        assert_eq!(back, h);
        assert_eq!(back.quantile_ps(0.999), h.quantile_ps(0.999));
        // The unconfigured layout round-trips too.
        let mut d = Histogram::default();
        d.record(7);
        let (w, counts, overflow, total, sum, max) = d.to_parts();
        assert_eq!(w, 0);
        assert_eq!(Histogram::from_parts(w, counts.to_vec(), overflow, total, sum, max), d);
    }

    #[test]
    fn debug_is_compact() {
        let h = filled(&[150, 250, 2_000]);
        let s = format!("{h:?}");
        assert!(s.contains("count: 3"), "{s}");
        assert!(s.contains("overflow: 1"), "{s}");
        assert!(!s.contains("counts"), "bin vector must not be dumped: {s}");
    }
}
