//! Memory-system energy model.
//!
//! The paper reports main-memory and scratchpad energy with gem5-SALAM's
//! models (Fig. 6, normalized to LAX). We substitute a standard
//! per-byte-dynamic plus static-power model; because the figure is
//! normalized, only the *ratios* between traffic mixes matter, and those are
//! preserved by any affine model of traffic.
//!
//! Default constants: LPDDR5 dynamic energy ≈ 4 pJ/bit = 32 pJ/B plus
//! ~55 mW of background/peripheral power per channel; on-chip SRAM
//! scratchpads ≈ 0.25 pJ/bit = 2 pJ/B plus a small leakage term for the
//! ~1.2 MB of total SPAD capacity.

use crate::stats::TrafficStats;
use relief_sim::Dur;

/// Energy model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyModel {
    /// DRAM dynamic energy per byte transferred, picojoules.
    pub dram_pj_per_byte: f64,
    /// DRAM background power, milliwatts.
    pub dram_static_mw: f64,
    /// Scratchpad dynamic energy per byte accessed, picojoules.
    pub spad_pj_per_byte: f64,
    /// Total scratchpad leakage power, milliwatts.
    pub spad_static_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 32.0,
            dram_static_mw: 55.0,
            spad_pj_per_byte: 2.0,
            spad_static_mw: 8.0,
        }
    }
}

/// Energy of one run, split by memory.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyBreakdown {
    /// Main-memory energy in nanojoules.
    pub dram_nj: f64,
    /// Scratchpad energy in nanojoules.
    pub spad_nj: f64,
}

impl EnergyBreakdown {
    /// Combined memory-system energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.dram_nj + self.spad_nj
    }
}

impl EnergyModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Energy for `traffic` over an execution window of `exec_time`.
    pub fn energy(&self, traffic: &TrafficStats, exec_time: Dur) -> EnergyBreakdown {
        let secs = exec_time.as_secs_f64();
        // mW × s = mJ = 1e6 nJ.
        let dram_static_nj = self.dram_static_mw * secs * 1e6;
        let spad_static_nj = self.spad_static_mw * secs * 1e6;
        let dram_dyn_nj = self.dram_pj_per_byte * traffic.dram_bytes() as f64 / 1e3;
        let spad_dyn_nj = self.spad_pj_per_byte * traffic.spad_access_bytes as f64 / 1e3;
        EnergyBreakdown {
            dram_nj: dram_static_nj + dram_dyn_nj,
            spad_nj: spad_static_nj + spad_dyn_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_traffic_zero_time_is_zero() {
        let e = EnergyModel::new().energy(&TrafficStats::default(), Dur::ZERO);
        assert_eq!(e.total_nj(), 0.0);
    }

    #[test]
    fn dynamic_energy_scales_with_bytes() {
        let m = EnergyModel { dram_static_mw: 0.0, spad_static_mw: 0.0, ..EnergyModel::new() };
        let t1 = TrafficStats { dram_read_bytes: 1000, ..Default::default() };
        let t2 = TrafficStats { dram_read_bytes: 3000, ..Default::default() };
        let e1 = m.energy(&t1, Dur::from_us(1));
        let e2 = m.energy(&t2, Dur::from_us(1));
        assert!((e2.dram_nj / e1.dram_nj - 3.0).abs() < 1e-12);
        // 1000 B × 32 pJ/B = 32 nJ.
        assert!((e1.dram_nj - 32.0).abs() < 1e-12);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let m = EnergyModel::new();
        let t = TrafficStats::default();
        let e = m.energy(&t, Dur::from_ms(1));
        // 55 mW for 1 ms = 55 uJ = 55_000 nJ.
        assert!((e.dram_nj - 55_000.0).abs() < 1e-9);
        assert!((e.spad_nj - 8_000.0).abs() < 1e-9);
    }

    #[test]
    fn spad_accesses_cost_less_per_byte_than_dram() {
        let m = EnergyModel::new();
        assert!(m.spad_pj_per_byte < m.dram_pj_per_byte);
    }
}
