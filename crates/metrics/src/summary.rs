//! Aggregation math for experiment summaries.
//!
//! The paper reports geometric means across application mixes and
//! percentile/variance statistics for fairness; these helpers implement
//! those reductions with explicit edge-case behavior.

use crate::stats::{RunStats, TrafficStats};

/// Stable-order aggregate over many runs' statistics.
///
/// Integer fields are exact sums, so they are independent of aggregation
/// order; the floating-point geometric mean is folded in *iteration
/// order*, which is why campaign consumers must feed runs in stable spec
/// order — that makes the aggregate byte-identical across reruns
/// regardless of how many worker threads produced the inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    /// Number of runs folded in.
    pub runs: usize,
    /// Summed traffic over all runs.
    pub traffic: TrafficStats,
    /// Total input edges across runs.
    pub edges_total: u64,
    /// Input edges served by forwarding.
    pub forwards: u64,
    /// Input edges served by colocation.
    pub colocations: u64,
    /// Nodes completed across runs.
    pub nodes_completed: u64,
    /// Node deadlines met across runs.
    pub node_deadlines_met: u64,
    /// DAG instances completed across runs.
    pub dags_completed: u64,
    /// DAG deadlines met across runs.
    pub dag_deadlines_met: u64,
    /// Geometric mean of per-run execution times, in µs.
    pub gmean_exec_us: f64,
}

impl Aggregate {
    /// Percent of nodes that met their deadline; 0 when nothing completed.
    pub fn node_deadline_percent(&self) -> f64 {
        if self.nodes_completed == 0 {
            0.0
        } else {
            100.0 * self.node_deadlines_met as f64 / self.nodes_completed as f64
        }
    }

    /// Percent of edges served by forwarding or colocation.
    pub fn forward_percent(&self) -> f64 {
        if self.edges_total == 0 {
            0.0
        } else {
            100.0 * (self.forwards + self.colocations) as f64 / self.edges_total as f64
        }
    }
}

/// Folds per-run statistics into an [`Aggregate`], in iteration order.
pub fn aggregate<'a>(stats: impl IntoIterator<Item = &'a RunStats>) -> Aggregate {
    let mut agg = Aggregate::default();
    let mut exec_us = Vec::new();
    for s in stats {
        agg.runs += 1;
        agg.traffic.merge(&s.traffic);
        agg.edges_total += s.edges_total;
        agg.forwards += s.forwards();
        agg.colocations += s.colocations();
        for a in s.apps.values() {
            agg.nodes_completed += a.nodes_completed;
            agg.node_deadlines_met += a.node_deadlines_met;
            agg.dags_completed += a.dags_completed;
            agg.dag_deadlines_met += a.dag_deadlines_met;
        }
        exec_us.push(s.exec_time.as_us_f64());
    }
    agg.gmean_exec_us = geometric_mean(exec_us.into_iter());
    agg
}

/// Geometric mean of a sequence of positive values.
///
/// Values ≤ 0 are clamped to a small epsilon (the paper's gmean columns do
/// the equivalent when a policy achieves zero forwards in a mix). Returns
/// 0.0 for an empty sequence.
pub fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    const EPS: f64 = 1e-9;
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(EPS).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean; 0.0 for an empty sequence.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance; 0.0 for sequences shorter than 2.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// `p`-th percentile (0–100) using nearest-rank on a sorted copy.
///
/// Returns 0.0 for an empty sequence.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or not finite.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(p.is_finite() && (0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp); // total order: NaNs sort high instead of panicking
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Maximum of a sequence; 0.0 when empty. NaNs are ignored.
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().filter(|v| !v.is_nan()).fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((geometric_mean([4.0, 9.0].into_iter()) - 6.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
        // A zero is clamped rather than zeroing the whole mean.
        assert!(geometric_mean([0.0, 100.0].into_iter()) > 0.0);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_range_checked() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn aggregate_sums_and_gmeans() {
        use crate::stats::AppStats;
        let mk = |exec_us: u64, nodes: u64, met: u64| {
            let mut s = RunStats {
                exec_time: relief_sim::Dur::from_us(exec_us),
                edges_total: 10,
                traffic: crate::stats::TrafficStats {
                    dram_read_bytes: 100,
                    ..Default::default()
                },
                ..Default::default()
            };
            s.apps.insert(
                "A".into(),
                AppStats {
                    name: "A".into(),
                    nodes_completed: nodes,
                    node_deadlines_met: met,
                    dags_completed: 1,
                    dag_deadlines_met: 1,
                    forwards: 2,
                    ..AppStats::default()
                },
            );
            s
        };
        let runs = [mk(4, 5, 5), mk(9, 5, 0)];
        let agg = aggregate(runs.iter());
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.edges_total, 20);
        assert_eq!(agg.forwards, 4);
        assert_eq!(agg.traffic.dram_read_bytes, 200);
        assert_eq!(agg.nodes_completed, 10);
        assert_eq!(agg.node_deadline_percent(), 50.0);
        assert_eq!(agg.forward_percent(), 20.0);
        assert!((agg.gmean_exec_us - 6.0).abs() < 1e-12);
        assert_eq!(aggregate([].into_iter()), Aggregate::default());
    }

    #[test]
    fn max_ignores_nan() {
        assert_eq!(max(&[1.0, f64::NAN, 3.0]), 3.0);
        assert_eq!(max(&[]), 0.0);
    }
}
