//! Aggregation math for experiment summaries.
//!
//! The paper reports geometric means across application mixes and
//! percentile/variance statistics for fairness; these helpers implement
//! those reductions with explicit edge-case behavior.

/// Geometric mean of a sequence of positive values.
///
/// Values ≤ 0 are clamped to a small epsilon (the paper's gmean columns do
/// the equivalent when a policy achieves zero forwards in a mix). Returns
/// 0.0 for an empty sequence.
pub fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    const EPS: f64 = 1e-9;
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(EPS).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean; 0.0 for an empty sequence.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance; 0.0 for sequences shorter than 2.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// `p`-th percentile (0–100) using nearest-rank on a sorted copy.
///
/// Returns 0.0 for an empty sequence.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or not finite.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(p.is_finite() && (0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile input must not contain NaN"));
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Maximum of a sequence; 0.0 when empty. NaNs are ignored.
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().filter(|v| !v.is_nan()).fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((geometric_mean([4.0, 9.0].into_iter()) - 6.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
        // A zero is clamped rather than zeroing the whole mean.
        assert!(geometric_mean([0.0, 100.0].into_iter()) > 0.0);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_range_checked() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn max_ignores_nan() {
        assert_eq!(max(&[1.0, f64::NAN, 3.0]), 3.0);
        assert_eq!(max(&[]), 0.0);
    }
}
