//! Per-run statistics containers.
//!
//! These are passive data structures (public fields, C-spirit) filled by the
//! SoC simulator and consumed by the experiment harness. Everything the
//! paper's figures report is derivable from a [`RunStats`].

use crate::hist::Histogram;
use relief_sim::Dur;
use std::collections::BTreeMap;
use std::fmt;

/// Byte-level data-movement accounting (basis of Figs. 5 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficStats {
    /// Bytes read from main memory.
    pub dram_read_bytes: u64,
    /// Bytes written to main memory.
    pub dram_write_bytes: u64,
    /// Bytes moved scratchpad-to-scratchpad (forwards).
    pub spad_to_spad_bytes: u64,
    /// Bytes whose movement was eliminated entirely by colocation.
    pub colocated_bytes: u64,
    /// Total bytes that crossed any scratchpad port (DMA in/out plus
    /// functional-unit reads/writes); drives scratchpad energy.
    pub spad_access_bytes: u64,
    /// Bytes the same execution would have moved through main memory if
    /// every load and store went to DRAM (each executed node's inputs read
    /// plus output written) — the normalization base of Fig. 5.
    pub all_dram_bytes: u64,
}

impl TrafficStats {
    /// Total main-memory traffic.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Upper bound on observed traffic: DRAM plus forwarded plus
    /// colocation-eliminated bytes. Always ≤ [`all_dram_bytes`]
    /// (forwarding and colocation only remove movement).
    ///
    /// [`all_dram_bytes`]: TrafficStats::all_dram_bytes
    pub fn total_if_all_dram(&self) -> u64 {
        self.dram_bytes() + self.spad_to_spad_bytes + self.colocated_bytes
    }

    /// Fraction of the all-DRAM baseline that hit main memory (Fig. 5's
    /// lower bars), in `[0, 1]`. Zero when nothing executed.
    pub fn dram_fraction(&self) -> f64 {
        if self.all_dram_bytes == 0 {
            0.0
        } else {
            self.dram_bytes() as f64 / self.all_dram_bytes as f64
        }
    }

    /// Fraction of the all-DRAM baseline moved scratchpad-to-scratchpad
    /// (Fig. 5's upper bars), in `[0, 1]`.
    pub fn spad_fraction(&self) -> f64 {
        if self.all_dram_bytes == 0 {
            0.0
        } else {
            self.spad_to_spad_bytes as f64 / self.all_dram_bytes as f64
        }
    }

    /// Accumulates another run's traffic into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.spad_to_spad_bytes += other.spad_to_spad_bytes;
        self.colocated_bytes += other.colocated_bytes;
        self.spad_access_bytes += other.spad_access_bytes;
        self.all_dram_bytes += other.all_dram_bytes;
    }
}

/// Per-application outcome within a mix (basis of Figs. 9, 10 and Table VII).
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AppStats {
    /// Application symbol (C, D, G, H, L).
    pub name: String,
    /// DAG instances that ran to completion.
    pub dags_completed: u64,
    /// Completed DAG instances that met the DAG deadline.
    pub dag_deadlines_met: u64,
    /// Nodes that ran to completion.
    pub nodes_completed: u64,
    /// Completed nodes that met their critical-path node deadline.
    pub node_deadlines_met: u64,
    /// End-to-end runtimes of completed DAG instances.
    pub dag_runtimes: Vec<Dur>,
    /// The application's relative deadline (denominator of slowdown).
    pub deadline: Dur,
    /// Edges consumed by completed-or-started nodes (forward opportunities).
    pub edges_consumed: u64,
    /// Edges satisfied by SPAD-to-SPAD forwarding.
    pub forwards: u64,
    /// Edges satisfied by colocation (no data movement at all).
    pub colocations: u64,
    /// True when the application never completed a single DAG instance while
    /// others did (starvation; rendered as `inf` slowdown in Fig. 10).
    pub starved: bool,
}

impl AppStats {
    /// Mean slowdown = runtime / deadline over completed instances.
    /// `None` when nothing completed.
    pub fn mean_slowdown(&self) -> Option<f64> {
        if self.dag_runtimes.is_empty() || self.deadline.is_zero() {
            return None;
        }
        let sum: f64 =
            self.dag_runtimes.iter().map(|r| r.as_ps() as f64 / self.deadline.as_ps() as f64).sum();
        Some(sum / self.dag_runtimes.len() as f64)
    }

    /// Worst observed slowdown; `None` when nothing completed.
    pub fn max_slowdown(&self) -> Option<f64> {
        if self.deadline.is_zero() {
            return None;
        }
        self.dag_runtimes
            .iter()
            .map(|r| r.as_ps() as f64 / self.deadline.as_ps() as f64)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// Fraction of completed nodes that met their deadline, in `[0, 1]`.
    pub fn node_deadline_ratio(&self) -> f64 {
        if self.nodes_completed == 0 {
            0.0
        } else {
            self.node_deadlines_met as f64 / self.nodes_completed as f64
        }
    }

    /// Fraction of completed DAGs that met their deadline, in `[0, 1]`.
    pub fn dag_deadline_ratio(&self) -> f64 {
        if self.dags_completed == 0 {
            0.0
        } else {
            self.dag_deadlines_met as f64 / self.dags_completed as f64
        }
    }
}

/// Fault-injection and recovery accounting (the resilience campaign's
/// raw material). All-zero when fault injection is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultStats {
    /// Task compute attempts that produced a corrupt output.
    pub task_faults: u64,
    /// Input DMA transfers that delivered corrupt data.
    pub dma_faults: u64,
    /// Faulted tasks re-queued after backoff.
    pub task_retries: u64,
    /// Tasks abandoned after exhausting their retry budget.
    pub tasks_aborted: u64,
    /// Previously faulted tasks whose retry eventually completed.
    pub recovered: u64,
    /// Accelerator-unit quarantine (offline) events.
    pub unit_quarantines: u64,
    /// DAG deadline misses on instances that absorbed at least one fault.
    pub fault_attributed_misses: u64,
    /// Forwarded chunks that failed their ECC check.
    pub ecc_faults: u64,
    /// Forwarding windows invalidated by ECC corruption (the edge fell
    /// back to a DRAM re-fetch after backoff).
    pub forward_invalidations: u64,
    /// DRAM-channel blackout windows that delayed a chunk start.
    pub channel_outages: u64,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn injected(&self) -> u64 {
        self.task_faults + self.dma_faults + self.ecc_faults
    }
}

/// QoS class names in dense-index order; `ClassServiceStats` at index `i`
/// of [`ServiceStats::classes`] describes `SERVICE_CLASSES[i]` traffic
/// (the same order as `relief_service::QosClass::index`).
pub const SERVICE_CLASSES: [&str; 3] = ["latency", "standard", "besteffort"];

/// One QoS class's slice of a service run.
///
/// The counters are run totals (used by trace reconciliation); the
/// histograms are warm-up-truncated — only samples completing at or after
/// the configured warm-up time are recorded, so tail quantiles describe
/// steady state rather than the cold-start transient.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassServiceStats {
    /// Requests the stream generated.
    pub arrivals: u64,
    /// Requests the admission controller let in.
    pub admitted: u64,
    /// Requests shed by an empty per-tenant token bucket.
    pub shed_bucket: u64,
    /// Requests shed by the class's share of the in-flight cap.
    pub shed_capacity: u64,
    /// Requests shed by an open (or probing half-open) circuit breaker.
    /// Zero unless self-healing is enabled.
    pub shed_breaker: u64,
    /// Admitted instances cancelled by their request timeout. Zero unless
    /// self-healing is enabled.
    pub timed_out: u64,
    /// Hedged replacement attempts launched after a timeout. Zero unless
    /// self-healing is enabled.
    pub hedged: u64,
    /// Admitted instances that ran to completion.
    pub completed: u64,
    /// Completed instances that met their DAG deadline.
    pub dag_deadlines_met: u64,
    /// Node completions sampled after warm-up.
    pub nodes_measured: u64,
    /// Sampled node completions that met their node deadline.
    pub node_deadlines_met: u64,
    /// End-to-end sojourn time (arrival to completion) of instances
    /// completing after warm-up.
    pub sojourn: Histogram,
    /// Arrival-to-node-completion latency of nodes completing after
    /// warm-up.
    pub node_latency: Histogram,
}

impl ClassServiceStats {
    /// Total shed requests.
    pub fn shed(&self) -> u64 {
        self.shed_bucket + self.shed_capacity + self.shed_breaker
    }

    /// Deadline attainment: instances that met the DAG deadline over
    /// *generated* requests (shed requests count as misses), in `[0, 1]`.
    pub fn attainment(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.dag_deadlines_met as f64 / self.arrivals as f64
        }
    }
}

/// Steady-state accounting of one open-loop service run; all-default (and
/// omitted from `Debug` output) when streaming is disabled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceStats {
    /// Warm-up truncation point, picoseconds.
    pub warmup_ps: u64,
    /// Request-generation horizon, picoseconds.
    pub duration_ps: u64,
    /// Per-class breakdowns, indexed per [`SERVICE_CLASSES`].
    pub classes: [ClassServiceStats; 3],
    /// In-flight transfers cancelled by request timeouts (each also emits
    /// a `DmaCancelled` trace record). Zero unless self-healing is
    /// enabled.
    pub timeout_cancelled_xfers: u64,
    /// Attempts consumed per completed request (1 = no hedge), recorded
    /// at completion. Empty unless self-healing is enabled.
    pub retry_hist: Histogram,
    /// Time each circuit breaker spent not-closed, recorded when it
    /// closes again. Empty unless self-healing is enabled.
    pub open_hist: Histogram,
}

impl ServiceStats {
    /// Total generated requests across classes.
    pub fn arrivals(&self) -> u64 {
        self.classes.iter().map(|c| c.arrivals).sum()
    }

    /// Total admitted requests across classes.
    pub fn admitted(&self) -> u64 {
        self.classes.iter().map(|c| c.admitted).sum()
    }

    /// Total bucket-shed requests across classes.
    pub fn shed_bucket(&self) -> u64 {
        self.classes.iter().map(|c| c.shed_bucket).sum()
    }

    /// Total capacity-shed requests across classes.
    pub fn shed_capacity(&self) -> u64 {
        self.classes.iter().map(|c| c.shed_capacity).sum()
    }

    /// Total breaker-shed requests across classes.
    pub fn shed_breaker(&self) -> u64 {
        self.classes.iter().map(|c| c.shed_breaker).sum()
    }

    /// Total timed-out instances across classes.
    pub fn timed_out(&self) -> u64 {
        self.classes.iter().map(|c| c.timed_out).sum()
    }

    /// Total hedged replacement attempts across classes.
    pub fn hedged(&self) -> u64 {
        self.classes.iter().map(|c| c.hedged).sum()
    }

    /// Total completed instances across classes.
    pub fn completed(&self) -> u64 {
        self.classes.iter().map(|c| c.completed).sum()
    }

    /// Fraction of generated requests shed, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        let arrivals = self.arrivals();
        if arrivals == 0 {
            0.0
        } else {
            (self.shed_bucket() + self.shed_capacity() + self.shed_breaker()) as f64
                / arrivals as f64
        }
    }

    /// Goodput of one class: deadline-meeting completions per simulated
    /// second of the generation horizon.
    pub fn goodput_per_s(&self, class: usize) -> f64 {
        if self.duration_ps == 0 {
            return 0.0;
        }
        self.classes[class].dag_deadlines_met as f64 / (self.duration_ps as f64 / 1e12)
    }
}

/// Everything one simulation run reports.
#[derive(Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunStats {
    /// Scheduling policy that produced this run.
    pub policy: String,
    /// End-to-end execution time (initiation of all apps to completion of
    /// the last, or the continuous-contention cap).
    pub exec_time: Dur,
    /// Data-movement accounting.
    pub traffic: TrafficStats,
    /// Per-application outcomes, keyed by app symbol.
    pub apps: BTreeMap<String, AppStats>,
    /// Sum over accelerators of compute busy time (numerator of Fig. 7).
    pub accel_busy: Dur,
    /// Time the interconnect had at least one transaction in flight
    /// (numerator of Fig. 13 occupancy).
    pub interconnect_busy: Dur,
    /// Busy time of the DRAM channel.
    pub dram_busy: Dur,
    /// Scheduler ready-queue operations performed.
    pub scheduler_ops: u64,
    /// Total modeled scheduler overhead.
    pub scheduler_time: Dur,
    /// Total edges in all *completed or attempted* work (denominator of
    /// Fig. 4).
    pub edges_total: u64,
    /// Fault-injection and recovery accounting; all-zero (and omitted from
    /// `Debug` output) when fault injection is disabled.
    pub faults: FaultStats,
    /// Open-loop service accounting; all-default (and omitted from
    /// `Debug` output) when streaming is disabled.
    pub service: ServiceStats,
}

/// Hand-written so fault-free, stream-free runs render exactly as they
/// did before those fields existed: campaign stdout is `{:?}` of
/// `RunStats`, and its golden outputs must stay byte-identical at fault
/// rate 0 / stream disabled. The `faults` and `service` fields are
/// appended only when some counter is nonzero.
impl fmt::Debug for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("RunStats");
        d.field("policy", &self.policy)
            .field("exec_time", &self.exec_time)
            .field("traffic", &self.traffic)
            .field("apps", &self.apps)
            .field("accel_busy", &self.accel_busy)
            .field("interconnect_busy", &self.interconnect_busy)
            .field("dram_busy", &self.dram_busy)
            .field("scheduler_ops", &self.scheduler_ops)
            .field("scheduler_time", &self.scheduler_time)
            .field("edges_total", &self.edges_total);
        if self.faults != FaultStats::default() {
            d.field("faults", &self.faults);
        }
        if self.service != ServiceStats::default() {
            d.field("service", &self.service);
        }
        d.finish()
    }
}

impl RunStats {
    /// Total forwards across applications.
    pub fn forwards(&self) -> u64 {
        self.apps.values().map(|a| a.forwards).sum()
    }

    /// Total colocations across applications.
    pub fn colocations(&self) -> u64 {
        self.apps.values().map(|a| a.colocations).sum()
    }

    /// Fig. 4 numerator over denominator: (forwards + colocations) / edges,
    /// as a percentage. Returns 0 when no edges were consumed.
    pub fn forward_percent(&self) -> f64 {
        if self.edges_total == 0 {
            0.0
        } else {
            100.0 * (self.forwards() + self.colocations()) as f64 / self.edges_total as f64
        }
    }

    /// Colocations / edges as a percentage.
    pub fn colocation_percent(&self) -> f64 {
        if self.edges_total == 0 {
            0.0
        } else {
            100.0 * self.colocations() as f64 / self.edges_total as f64
        }
    }

    /// Accelerator occupancy as defined in Fig. 7: total accelerator compute
    /// time over end-to-end execution time.
    pub fn accel_occupancy(&self) -> f64 {
        if self.exec_time.is_zero() {
            0.0
        } else {
            self.accel_busy.as_ps() as f64 / self.exec_time.as_ps() as f64
        }
    }

    /// Interconnect occupancy as defined in Fig. 13.
    pub fn interconnect_occupancy(&self) -> f64 {
        if self.exec_time.is_zero() {
            0.0
        } else {
            (self.interconnect_busy.as_ps() as f64 / self.exec_time.as_ps() as f64).min(1.0)
        }
    }

    /// Percent of node deadlines met across all applications (Fig. 8).
    pub fn node_deadline_percent(&self) -> f64 {
        let done: u64 = self.apps.values().map(|a| a.nodes_completed).sum();
        let met: u64 = self.apps.values().map(|a| a.node_deadlines_met).sum();
        if done == 0 {
            0.0
        } else {
            100.0 * met as f64 / done as f64
        }
    }

    /// Percent of DAG deadlines met across all applications (Fig. 9b/10b).
    pub fn dag_deadline_percent(&self) -> f64 {
        let done: u64 = self.apps.values().map(|a| a.dags_completed).sum();
        let met: u64 = self.apps.values().map(|a| a.dag_deadlines_met).sum();
        if done == 0 {
            0.0
        } else {
            100.0 * met as f64 / done as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(forwards: u64, colocs: u64) -> AppStats {
        AppStats {
            name: "C".into(),
            deadline: Dur::from_us(100),
            dag_runtimes: vec![Dur::from_us(50), Dur::from_us(150)],
            dags_completed: 2,
            dag_deadlines_met: 1,
            nodes_completed: 10,
            node_deadlines_met: 8,
            edges_consumed: 12,
            forwards,
            colocations: colocs,
            starved: false,
        }
    }

    #[test]
    fn traffic_totals() {
        let t = TrafficStats {
            dram_read_bytes: 10,
            dram_write_bytes: 5,
            spad_to_spad_bytes: 20,
            colocated_bytes: 7,
            spad_access_bytes: 99,
            all_dram_bytes: 60,
        };
        assert_eq!(t.dram_bytes(), 15);
        assert_eq!(t.total_if_all_dram(), 42);
        assert_eq!(t.dram_fraction(), 0.25);
        assert_eq!(t.spad_fraction(), 20.0 / 60.0);
        assert_eq!(TrafficStats::default().dram_fraction(), 0.0);
        let mut u = t;
        u.merge(&t);
        assert_eq!(u.dram_bytes(), 30);
        assert_eq!(u.spad_access_bytes, 198);
        assert_eq!(u.all_dram_bytes, 120);
    }

    #[test]
    fn slowdowns() {
        let a = app(3, 1);
        assert_eq!(a.mean_slowdown(), Some(1.0));
        assert_eq!(a.max_slowdown(), Some(1.5));
        assert_eq!(a.node_deadline_ratio(), 0.8);
        assert_eq!(a.dag_deadline_ratio(), 0.5);
    }

    #[test]
    fn empty_app_has_no_slowdown() {
        let a = AppStats::default();
        assert_eq!(a.mean_slowdown(), None);
        assert_eq!(a.max_slowdown(), None);
        assert_eq!(a.node_deadline_ratio(), 0.0);
    }

    #[test]
    fn run_percentages() {
        let mut r = RunStats { edges_total: 24, exec_time: Dur::from_us(200), ..Default::default() };
        r.apps.insert("C".into(), app(3, 1));
        r.apps.insert("D".into(), app(5, 3));
        assert_eq!(r.forwards(), 8);
        assert_eq!(r.colocations(), 4);
        assert!((r.forward_percent() - 50.0).abs() < 1e-12);
        assert!((r.colocation_percent() - 100.0 * 4.0 / 24.0).abs() < 1e-12);
        r.accel_busy = Dur::from_us(300);
        assert!((r.accel_occupancy() - 1.5).abs() < 1e-12);
        assert!((r.node_deadline_percent() - 80.0).abs() < 1e-12);
        assert!((r.dag_deadline_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn debug_omits_faults_only_when_fault_free() {
        let clean = RunStats { policy: "relief".into(), ..Default::default() };
        let rendered = format!("{clean:?}");
        assert!(
            !rendered.contains("faults"),
            "fault-free runs must render without the fault field (golden stability): {rendered}"
        );
        assert!(rendered.ends_with("edges_total: 0 }"), "{rendered}");
        let mut faulty = clean;
        faulty.faults.task_faults = 2;
        let rendered = format!("{faulty:?}");
        assert!(rendered.contains("faults: FaultStats"), "{rendered}");
        assert!(rendered.contains("task_faults: 2"), "{rendered}");
    }

    #[test]
    fn debug_omits_service_only_when_stream_free() {
        let clean = RunStats { policy: "relief".into(), ..Default::default() };
        let rendered = format!("{clean:?}");
        assert!(
            !rendered.contains("service"),
            "stream-free runs must render without the service field (golden stability): {rendered}"
        );
        let mut streamed = clean;
        streamed.service.classes[0].arrivals = 5;
        let rendered = format!("{streamed:?}");
        assert!(rendered.contains("service: ServiceStats"), "{rendered}");
        assert!(rendered.contains("arrivals: 5"), "{rendered}");
    }

    #[test]
    fn fault_totals() {
        let f = FaultStats { task_faults: 3, dma_faults: 4, ..Default::default() };
        assert_eq!(f.injected(), 7);
    }

    #[test]
    fn service_totals_and_rates() {
        let mut s = ServiceStats { duration_ps: 2_000_000_000_000, ..Default::default() }; // 2 s
        s.classes[0] = ClassServiceStats {
            arrivals: 10,
            admitted: 8,
            shed_bucket: 1,
            shed_capacity: 1,
            completed: 8,
            dag_deadlines_met: 6,
            ..Default::default()
        };
        s.classes[2] = ClassServiceStats {
            arrivals: 10,
            admitted: 4,
            shed_bucket: 2,
            shed_capacity: 4,
            completed: 4,
            dag_deadlines_met: 2,
            ..Default::default()
        };
        assert_eq!(s.arrivals(), 20);
        assert_eq!(s.admitted(), 12);
        assert_eq!(s.shed_bucket(), 3);
        assert_eq!(s.shed_capacity(), 5);
        assert_eq!(s.completed(), 12);
        assert!((s.shed_rate() - 0.4).abs() < 1e-12);
        assert!((s.goodput_per_s(0) - 3.0).abs() < 1e-12);
        assert_eq!(s.classes[0].shed(), 2);
        assert!((s.classes[0].attainment() - 0.6).abs() < 1e-12);
        assert!(s.classes[0].attainment() > s.classes[2].attainment());
        assert_eq!(ClassServiceStats::default().attainment(), 0.0);
        assert_eq!(ServiceStats::default().shed_rate(), 0.0);
        assert_eq!(ServiceStats::default().goodput_per_s(0), 0.0);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = RunStats::default();
        assert_eq!(r.forward_percent(), 0.0);
        assert_eq!(r.accel_occupancy(), 0.0);
        assert_eq!(r.interconnect_occupancy(), 0.0);
        assert_eq!(r.node_deadline_percent(), 0.0);
        assert_eq!(r.dag_deadline_percent(), 0.0);
    }
}
