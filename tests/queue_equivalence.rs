//! Hot-path equivalence suite: `SocConfig::reference_hot_path` restores
//! the pre-optimisation *host* costs (BinaryHeap event core, string-keyed
//! compute predictions, linear consumer scans) and must not change one
//! bit of *simulated* behaviour. Every optimisation that the wall-clock
//! benchmark credits — the calendar event queue, interned kind ids, the
//! carried consumer index — is therefore validated here against its own
//! reference implementation on real workloads:
//!
//! 1. **Policy sweep** — all eight fairness-study policies over a pinned
//!    high-contention mix produce byte-identical `RunStats`, identical
//!    per-app accounting, identical prediction samples, identical
//!    executed-task traces, and the same event count on both paths.
//! 2. **Fault recovery** — with task faults, DMA faults, and unit
//!    outages injected (requeues at the current instant plus far-future
//!    repair events, the calendar queue's hardest traffic), both paths
//!    still agree exactly.
//! 3. **Continuous contention** — the 50 ms time-limited repeat path
//!    agrees under the paper's policy and the FCFS baseline.

use relief::bench::config_for;
use relief::prelude::*;
use relief_accel::SimResult;

const ALL_POLICIES: [PolicyKind; 8] = PolicyKind::ALL;

/// Runs `cfg` over `workload` on the optimised and the reference hot
/// path and asserts the two `SimResult`s are observationally identical.
fn assert_paths_agree(mut cfg: SocConfig, workload: &[AppSpec], what: &str) {
    cfg.record_trace = true;
    let run = |reference: bool| -> SimResult {
        let mut cfg = cfg.clone();
        cfg.reference_hot_path = reference;
        SocSim::new(cfg, workload.to_vec()).run()
    };
    let fast = run(false);
    let reference = run(true);

    assert_eq!(
        format!("{:?}", fast.stats),
        format!("{:?}", reference.stats),
        "{what}: RunStats diverged between hot paths"
    );
    assert_eq!(
        fast.per_app_mem_time, reference.per_app_mem_time,
        "{what}: per-app DMA accounting diverged"
    );
    assert_eq!(
        fast.per_app_compute_time, reference.per_app_compute_time,
        "{what}: per-app compute accounting diverged"
    );
    assert_eq!(
        fast.prediction.compute_rel_errors, reference.prediction.compute_rel_errors,
        "{what}: compute-prediction samples diverged"
    );
    assert_eq!(
        fast.prediction.dm_rel_errors, reference.prediction.dm_rel_errors,
        "{what}: data-movement-prediction samples diverged"
    );
    assert_eq!(fast.trace, reference.trace, "{what}: executed-task traces diverged");
    assert_eq!(
        fast.events_dispatched, reference.events_dispatched,
        "{what}: event counts diverged"
    );
}

#[test]
fn all_policies_agree_on_high_contention_mix() {
    let mixes = Contention::High.mixes();
    let mix = mixes.first().expect("high contention has mixes");
    let workload = mix.workload();
    for policy in ALL_POLICIES {
        assert_paths_agree(
            config_for(policy, Contention::High),
            &workload,
            &format!("{policy:?} on high/{}", mix.label()),
        );
    }
}

#[test]
fn second_mix_covers_a_different_dag_shape() {
    let mixes = Contention::High.mixes();
    let mix = mixes.get(1).expect("high contention has at least two mixes");
    let workload = mix.workload();
    for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
        assert_paths_agree(
            config_for(policy, Contention::High),
            &workload,
            &format!("{policy:?} on high/{}", mix.label()),
        );
    }
}

#[test]
fn fault_recovery_requeues_agree() {
    let mixes = Contention::High.mixes();
    let mix = mixes.first().expect("high contention has mixes");
    let workload = mix.workload();
    for policy in [PolicyKind::Fcfs, PolicyKind::Relief, PolicyKind::ReliefLax] {
        let mut cfg = config_for(policy, Contention::High);
        cfg.fault = FaultConfig {
            task_fault_rate: 0.05,
            dma_fault_rate: 0.05,
            unit_mttf_ps: 20_000_000_000, // one outage every ~20 ms
            ..FaultConfig::default()
        };
        assert_paths_agree(cfg, &workload, &format!("{policy:?} with faults"));
    }
}

#[test]
fn continuous_contention_repeat_path_agrees() {
    let mixes = Contention::Continuous.mixes();
    let mix = mixes.first().expect("continuous contention has mixes");
    let workload = mix.workload();
    for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
        assert_paths_agree(
            config_for(policy, Contention::Continuous),
            &workload,
            &format!("{policy:?} on continuous/{}", mix.label()),
        );
    }
}
