//! Chaos-hardening integration suite: the determinism, inertness, and
//! self-protection contracts of the memory-side fault domains, the
//! service self-healing stack, and the simulation watchdog, checked end
//! to end through the simulator and the campaign engine.
//!
//! 1. **Jobs-invariance under chaos** — a chaos campaign (faults +
//!    overload + breakers + timeouts + hedges) renders byte-identical
//!    reports at `--jobs 1`, `4`, and `8`.
//! 2. **Knobs-off bit-inertness** — disabled self-healing knobs and any
//!    untripped watchdog window leave `RunStats` and the event count
//!    bit-identical, so every golden output predating this layer is
//!    unchanged by its existence.
//! 3. **Watchdog** — an artificially wedged simulation (an empty
//!    schedule replay, a same-timestamp livelock) surfaces as a typed
//!    `StallError` with a diagnostic dump instead of a silent wrong
//!    result or an unbounded loop.
//! 4. **Invariants** — the debug-build conservation checks (byte
//!    ledger, node-phase accounting) hold across every policy × 20
//!    seeds under combined fault injection, channel outages, and the
//!    full self-healing stack.
//! 5. **Campaign cache round-trip** — chaos, resilience, and service
//!    campaigns store to and serve from the persistent cache with
//!    byte-identical reports and no stale entries.

use relief::bench::cache::CacheConfig;
use relief::bench::campaign::{execute, ExecOptions, WorkloadSpec};
use relief::bench::chaos::ChaosSpec;
use relief::bench::resilience::ResilienceSpec;
use relief::bench::service::ServiceSpec;
use relief::prelude::*;
use relief_core::{Schedule, ScheduleReplay};
use relief_service::{AdmissionConfig, SelfHealConfig};
use relief_sim::StallKind;
use std::sync::Arc;

/// The CGL tenant trio: one app spec per tenant, in tenant order.
fn cgl_apps() -> Vec<AppSpec> {
    vec![
        AppSpec::once("C", App::Canny.dag()),
        AppSpec::once("G", App::Gru.dag()),
        AppSpec::once("L", App::Lstm.dag()),
    ]
}

/// A three-tenant Poisson stream at `rate` requests/s per tenant with an
/// in-flight cap of `cap` and the given self-healing stack.
fn stream(rate: f64, cap: u32, duration_ms: u64, heal: SelfHealConfig) -> StreamConfig {
    StreamConfig {
        duration_ps: duration_ms * 1_000_000_000,
        warmup_ps: duration_ms * 100_000_000, // first 10%
        tenants: vec![
            TenantCfg::new(QosClass::Latency, rate),
            TenantCfg::new(QosClass::Standard, rate),
            TenantCfg::new(QosClass::BestEffort, rate),
        ],
        admission: AdmissionConfig { max_in_flight: cap, ..AdmissionConfig::default() },
        self_heal: heal,
        ..StreamConfig::default()
    }
}

#[test]
fn chaos_campaign_reports_are_byte_identical_across_jobs() {
    let spec = ChaosSpec {
        fault_rates: vec![0.0, 0.02],
        arrival_rates: vec![300.0],
        duration_ps: 10_000_000_000,
        warmup_ps: 1_000_000_000,
        policies: vec![PolicyKind::Fcfs, PolicyKind::Relief],
        ..Default::default()
    };
    spec.validate().unwrap();
    let serial =
        execute(spec.campaign().expand(), &ExecOptions { jobs: 1, ..Default::default() });
    assert!(serial.failures().is_empty(), "{:?}", serial.failures());
    assert!(serial.mismatched().is_empty(), "{:?}", serial.mismatched());
    for jobs in [4, 8] {
        let parallel =
            execute(spec.campaign().expand(), &ExecOptions { jobs, ..Default::default() });
        assert_eq!(
            serial.report(),
            parallel.report(),
            "chaos campaign stdout must not depend on --jobs (jobs={jobs})"
        );
        assert_eq!(spec.render(&serial), spec.render(&parallel));
    }
}

#[test]
fn disabled_self_heal_knobs_are_bit_inert() {
    // Disabled means breaker_failures == 0 and timeout_factor == 0; every
    // other knob is then dead weight and perturbing it must not move one
    // bit of the run.
    let base = stream(300.0, 12, 10, SelfHealConfig::default());
    let perturbed = stream(
        300.0,
        12,
        10,
        SelfHealConfig {
            breaker_open_ps: 7_000_000,
            probe_rate: 0.25,
            probes_to_close: 9,
            hedge_rate: 0.5,
            ..SelfHealConfig::default()
        },
    );
    assert!(!perturbed.self_heal.enabled());
    let a = SocSim::new(SocConfig::mobile(PolicyKind::Relief).with_stream(base), cgl_apps())
        .run();
    let b =
        SocSim::new(SocConfig::mobile(PolicyKind::Relief).with_stream(perturbed), cgl_apps())
            .run();
    assert_eq!(
        format!("{:?}", a.stats),
        format!("{:?}", b.stats),
        "disabled self-healing knobs must be bit-inert"
    );
    assert_eq!(a.events_dispatched, b.events_dispatched);
}

#[test]
fn untripped_watchdog_window_is_bit_inert() {
    let run = |window: u64| {
        let mut cfg = SocConfig::mobile(PolicyKind::Relief)
            .with_fault(FaultConfig { task_fault_rate: 0.02, ..FaultConfig::default() });
        cfg.watchdog_window = window;
        SocSim::new(cfg, cgl_apps()).run()
    };
    let on = run(2_000_000);
    let wide = run(8_000_000);
    let off = run(0);
    let a = format!("{:?}", on.stats);
    assert_eq!(a, format!("{:?}", wide.stats), "watchdog is detection-only");
    assert_eq!(a, format!("{:?}", off.stats), "watchdog off must change nothing");
    assert_eq!(on.events_dispatched, off.events_dispatched);
}

#[test]
fn empty_replay_surfaces_as_drained_with_work_left() {
    // A replay policy prescribing nothing never dispatches a task: the
    // event queue drains with every DAG untouched. Pre-watchdog this
    // returned a silently wrong (empty) result.
    let cfg = SocConfig::mobile(PolicyKind::Fcfs);
    let replay = ScheduleReplay::new(&Schedule::new(), &cfg.acc_instances)
        .impersonating(PolicyKind::Fcfs);
    let err = SocSim::new(cfg, cgl_apps())
        .with_policy_object(Box::new(replay))
        .try_run()
        .expect_err("an empty replay must stall");
    assert_eq!(err.kind, StallKind::DrainedWithWorkLeft);
    let msg = err.to_string();
    assert!(msg.contains("event queue drained with work left"), "{msg}");
    assert!(msg.contains("ready-queue depth"), "dump must carry queue state: {msg}");
    assert!(msg.contains("nodes left"), "dump must name the stuck instances: {msg}");
}

#[test]
fn same_timestamp_livelock_trips_the_no_progress_window() {
    // 64 independent zero-cost, zero-byte tasks all execute at t = 0 with
    // scheduler overhead unmodeled: legitimate work, but every event
    // lands on the same timestamp. A window smaller than the cohort must
    // flag it as a livelock — this is exactly the signature of an event
    // loop that stopped advancing time.
    let mut b = DagBuilder::new("spin", Dur::from_us(100));
    for _ in 0..64 {
        b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_ps(0)));
    }
    let dag = Arc::new(b.build().expect("independent roots form a valid dag"));
    let mk = |window: u64| {
        let mut cfg = SocConfig::generic(vec![1], PolicyKind::Fcfs);
        cfg.model_sched_overhead = false;
        cfg.compute_jitter = 0.0;
        cfg.watchdog_window = window;
        SocSim::new(cfg, vec![AppSpec::once("S", dag.clone())])
    };
    let err = mk(8).try_run().expect_err("64 same-ps events must overflow a window of 8");
    assert_eq!(err.kind, StallKind::NoProgressWindow);
    assert_eq!(err.at_ps, 0, "the livelock never left t=0");
    // The same run under the default window completes untouched.
    let ok = mk(2_000_000).try_run().expect("default window must not trip");
    assert_eq!(ok.stats.apps["S"].nodes_completed, 64);
}

#[test]
fn conservation_invariants_hold_across_policies_and_seeds_under_chaos() {
    // Debug builds run the end-of-run conservation checks (byte ledger,
    // node-phase accounting) inside finalize; this sweep drives them
    // through every policy × 20 seeds with every chaos mechanism active
    // at once: task/DMA/ECC faults, unit and DRAM-channel outages,
    // breakers, timeouts, and hedged retries.
    for policy in PolicyKind::ALL {
        for seed in 0..20u64 {
            let fault = FaultConfig {
                seed: 0xC0FFEE ^ seed,
                task_fault_rate: 0.02,
                dma_fault_rate: 0.02,
                ecc_chunk_rate: 0.02,
                unit_mttf_ps: 5_000_000_000,
                dram_mttf_ps: 5_000_000_000,
                ..FaultConfig::default()
            };
            let heal = ChaosSpec::self_heal();
            let mut stream = stream(2_000.0, 8, 2, heal);
            stream.seed = seed;
            let mut cfg = SocConfig::mobile(policy).with_fault(fault).with_stream(stream);
            cfg.seed ^= seed;
            let result = SocSim::new(cfg, cgl_apps()).run();
            assert!(
                result.stats.service.arrivals() > 0,
                "{policy:?}/seed {seed}: chaos run saw no arrivals"
            );
        }
    }
}

#[test]
fn campaigns_round_trip_through_the_persistent_cache() {
    let dir = std::env::temp_dir().join(format!("relief-chaos-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ExecOptions { cache: CacheConfig::at(&dir), jobs: 2, ..Default::default() };

    let chaos = ChaosSpec {
        fault_rates: vec![0.0, 0.02],
        arrival_rates: vec![300.0],
        duration_ps: 5_000_000_000,
        warmup_ps: 500_000_000,
        policies: vec![PolicyKind::Relief],
        ..Default::default()
    };
    let mixes = Contention::Low.mixes();
    let resilience = ResilienceSpec {
        rates: vec![0.02],
        policies: vec![PolicyKind::Relief],
        workload: WorkloadSpec::mix(Contention::Low, &mixes[0]),
        ..Default::default()
    };
    let service = ServiceSpec {
        rates: vec![100.0],
        duration_ps: 5_000_000_000,
        warmup_ps: 500_000_000,
        policies: vec![PolicyKind::Relief],
        ..Default::default()
    };

    // Cold pass simulates everything; warm pass must serve every cell
    // from disk and render byte-identical reports.
    let runs = |n: usize| -> Vec<_> {
        match n {
            0 => chaos.campaign().expand(),
            1 => resilience.campaign().expand(),
            _ => service.campaign().expand(),
        }
    };
    for n in 0..3 {
        let cold = execute(runs(n), &opts);
        assert!(cold.failures().is_empty(), "{:?}", cold.failures());
        assert_eq!(cold.cache_hits, 0, "campaign {n}: cold pass must simulate");
        let warm = execute(runs(n), &opts);
        assert_eq!(warm.cache_hits, runs(n).len(), "campaign {n}: warm pass must hit");
        assert_eq!(cold.report(), warm.report(), "campaign {n}: warm report drifted");
    }
    assert_eq!(
        opts.cache.stale_entries(),
        Vec::<String>::new(),
        "fresh entries must carry the current schema and salt"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
