//! Generational-instance-recycling property suite: retiring completed /
//! aborted / cancelled DAG instances into the slot allocator — and
//! recycling their `NodeRt` vectors through the per-app pools — must be
//! *observationally invisible*. `SocConfig::reference_hot_path` keeps
//! every instance alive forever (slot == admission serial throughout),
//! and this suite pins the recycling path bit-exact against it:
//!
//! 1. **Seed × policy rotation** — twenty distinct simulation seeds
//!    rotated through all eleven policies, with deterministic fault
//!    injection (task aborts retire instances mid-run) folded into every
//!    third seed.
//! 2. **Service mode with the self-healing stack on** — Poisson
//!    arrivals, request timeouts, hedged retries, and circuit breakers.
//!    Completed requests leave armed `Ev::Timeout`s behind; those fire
//!    after the slot has been recycled and must be recognised as stale
//!    (serial mismatch) and dropped, not cancel the new tenant.
//! 3. **Recycling actually engages** — the recycling path's live-slot
//!    high-water mark stays strictly below the reference path's (which
//!    equals total admissions), so the equivalence above is not running
//!    with retirement accidentally disabled.
//! 4. **Bounded-memory mode is observation-only** — dropping the
//!    O(completed-instances) prediction/runtime samples must not move
//!    one simulated event.

use relief::bench::config_for;
use relief::prelude::*;
use relief_accel::SimResult;
use relief_service::{AdmissionConfig, SelfHealConfig, StreamConfig, TenantCfg};

/// All eleven schedulable policies: the fairness-study eight plus the
/// heterogeneity/throttling/adaptive extensions.
fn eleven_policies() -> Vec<PolicyKind> {
    let all: Vec<PolicyKind> =
        PolicyKind::ALL.iter().chain(PolicyKind::EXTENSIONS.iter()).copied().collect();
    assert_eq!(all.len(), 11);
    all
}

/// Runs `cfg` over `workload` on the recycling (default) and the
/// reference hot path, asserts the two `SimResult`s are observationally
/// identical, and returns them for lifecycle assertions.
fn assert_paths_agree(
    mut cfg: SocConfig,
    workload: &[AppSpec],
    what: &str,
) -> (SimResult, SimResult) {
    cfg.record_trace = true;
    let run = |reference: bool| -> SimResult {
        let mut cfg = cfg.clone();
        cfg.reference_hot_path = reference;
        SocSim::new(cfg, workload.to_vec()).run()
    };
    let fast = run(false);
    let reference = run(true);

    assert_eq!(
        format!("{:?}", fast.stats),
        format!("{:?}", reference.stats),
        "{what}: RunStats diverged under instance recycling"
    );
    assert_eq!(
        fast.per_app_mem_time, reference.per_app_mem_time,
        "{what}: per-app DMA accounting diverged"
    );
    assert_eq!(
        fast.per_app_compute_time, reference.per_app_compute_time,
        "{what}: per-app compute accounting diverged"
    );
    assert_eq!(
        fast.prediction.compute_rel_errors, reference.prediction.compute_rel_errors,
        "{what}: compute-prediction samples diverged"
    );
    assert_eq!(
        fast.prediction.dm_rel_errors, reference.prediction.dm_rel_errors,
        "{what}: data-movement-prediction samples diverged (retirement fold broke ordering?)"
    );
    assert_eq!(
        fast.prediction.bw_rel_errors, reference.prediction.bw_rel_errors,
        "{what}: bandwidth-prediction samples diverged"
    );
    assert_eq!(fast.trace, reference.trace, "{what}: executed-task traces diverged");
    assert_eq!(
        fast.events_dispatched, reference.events_dispatched,
        "{what}: event counts diverged"
    );
    assert!(
        fast.live_high_water <= reference.live_high_water,
        "{what}: recycling path held more live slots ({}) than never-retiring \
         reference ({})",
        fast.live_high_water,
        reference.live_high_water
    );
    (fast, reference)
}

/// The self-healing stack the service-mode tests stream under: breakers,
/// 2x-prediction request timeouts, and hedged retries for the top two
/// QoS classes — every handle-outliving-the-instance mechanism at once.
fn self_heal() -> SelfHealConfig {
    SelfHealConfig {
        breaker_failures: 3,
        breaker_open_ps: 2_000_000_000,
        probe_rate: 0.5,
        probes_to_close: 2,
        timeout_factor: 1.5,
        hedge_budget: [1, 1, 0],
        hedge_rate: 1.0,
    }
}

/// A three-tenant Poisson stream at `rate` requests/s per tenant.
fn stream(seed: u64, rate: f64, cap: u32, duration_ms: u64) -> StreamConfig {
    StreamConfig {
        seed,
        duration_ps: duration_ms * 1_000_000_000,
        warmup_ps: duration_ms * 100_000_000, // first 10%
        tenants: vec![
            TenantCfg::new(QosClass::Latency, rate),
            TenantCfg::new(QosClass::Standard, rate),
            TenantCfg::new(QosClass::BestEffort, rate),
        ],
        admission: AdmissionConfig { max_in_flight: cap, ..AdmissionConfig::default() },
        self_heal: self_heal(),
        ..StreamConfig::default()
    }
}

/// The CGL tenant trio: one app spec per tenant, in tenant order.
fn cgl_apps() -> Vec<AppSpec> {
    vec![
        AppSpec::once("C", App::Canny.dag()),
        AppSpec::once("G", App::Gru.dag()),
        AppSpec::once("L", App::Lstm.dag()),
    ]
}

/// Twenty seeds rotated across all eleven policies on a closed-loop
/// low-contention mix, with deterministic task/DMA faults folded into
/// every third seed so the abort path (first-fault instance retirement)
/// recycles slots mid-run.
#[test]
fn twenty_seeds_rotate_all_eleven_policies() {
    let eleven = eleven_policies();
    let mixes = Contention::Low.mixes();
    // The second mix, so this suite's coverage differs from
    // soa_equivalence (which sweeps the first).
    let mix = mixes.get(1).expect("low contention has at least two mixes");
    let workload = mix.workload();
    for seed in 0..20u64 {
        let policy = eleven[(seed as usize) % eleven.len()];
        let mut cfg = config_for(policy, Contention::Low);
        cfg.seed = 0x4EC1_0000 ^ seed.wrapping_mul(0x9E37_79B9);
        let mut what = format!("seed {seed} {policy:?}");
        if seed % 3 == 2 {
            let fault_seed = cfg.seed ^ 0x4EC1;
            cfg = cfg.with_fault(FaultConfig {
                seed: fault_seed,
                task_fault_rate: 0.03,
                dma_fault_rate: 0.02,
                ..FaultConfig::default()
            });
            what.push_str(" +faults");
        }
        assert_paths_agree(cfg, &workload, &what);
    }
}

/// Open-loop service mode with the full self-healing stack and fault
/// injection: timeouts cancel and hedge instances (exercising stale
/// `Ev::Timeout`s on recycled slots), breakers shed, and the stream
/// admits far more requests than are ever concurrently live. The
/// recycling path must agree bit-for-bit *and* demonstrably recycle:
/// its live-slot high-water mark stays strictly below the reference
/// path's total-admissions count.
#[test]
fn service_mode_with_self_healing_recycles_and_agrees() {
    for &(seed, rate, policy) in &[
        (0x4EC5_0001u64, 1_500.0, PolicyKind::Relief),
        (0x4EC5_0002, 2_000.0, PolicyKind::Fcfs),
        (0x4EC5_0003, 1_000.0, PolicyKind::Adaptive),
    ] {
        let mut cfg = SocConfig::mobile(policy).with_stream(stream(seed, rate, 10, 10));
        // DRAM-channel outages stall whole requests long enough for the
        // self-healing timeouts to fire (and later land on recycled
        // slots as stale events).
        cfg = cfg.with_fault(FaultConfig {
            seed: seed ^ 0xFA17,
            task_fault_rate: 0.02,
            dma_fault_rate: 0.02,
            dram_mttf_ps: 2_000_000_000, // ~5 outages over the 10 ms stream
            ..FaultConfig::default()
        });
        let what = format!("service seed {seed:#x} {policy:?}");
        let (fast, reference) = assert_paths_agree(cfg, &cgl_apps(), &what);

        let svc = &fast.stats.service;
        assert!(svc.completed() > 0, "{what}: no request completed");
        assert!(
            svc.timed_out() > 0,
            "{what}: no request timed out — the stale-timeout path was not exercised"
        );
        // Reference mode never retires, so its high-water mark equals
        // total admissions; recycling must stay strictly below it.
        assert!(
            fast.live_high_water < reference.live_high_water,
            "{what}: recycling never engaged (live high-water {} vs {} admissions)",
            fast.live_high_water,
            reference.live_high_water
        );
    }
}

/// Bounded-memory mode (the soak bench's observation diet) drops the
/// O(completed) prediction and runtime samples but must not move one
/// simulated event: traffic, service accounting, execution time, and
/// the event count all stay bit-identical.
#[test]
fn bounded_memory_is_observation_only() {
    let build = |bounded: bool| {
        let mut cfg = SocConfig::mobile(PolicyKind::Relief)
            .with_stream(stream(0x4EC5_00B1, 1_200.0, 10, 10));
        cfg.bounded_memory = bounded;
        SocSim::new(cfg, cgl_apps()).run()
    };
    let full = build(false);
    let dieted = build(true);

    assert_eq!(full.events_dispatched, dieted.events_dispatched);
    assert_eq!(full.live_high_water, dieted.live_high_water);
    assert_eq!(full.stats.exec_time, dieted.stats.exec_time);
    assert_eq!(full.stats.traffic, dieted.stats.traffic);
    assert_eq!(full.stats.service, dieted.stats.service);
    assert_eq!(full.per_app_mem_time, dieted.per_app_mem_time);
    assert_eq!(full.per_app_compute_time, dieted.per_app_compute_time);

    assert!(!full.prediction.compute_rel_errors.is_empty());
    assert!(dieted.prediction.compute_rel_errors.is_empty());
    assert!(dieted.prediction.dm_rel_errors.is_empty());
    assert!(dieted.prediction.bw_rel_errors.is_empty());
    assert!(dieted.stats.apps.values().all(|a| a.dag_runtimes.is_empty()));
}
