//! Golden pins for the calibrated paper artifacts in EXPERIMENTS.md.
//!
//! Table II compute times are calibrated against the paper to ≤ 0.02 %
//! and must never drift; Fig. 4's high-contention forwarding rates pin
//! the headline result (RELIEF converts > 65 % of edges vs ≲ 26 % for
//! every baseline). Both artifacts are produced through the campaign
//! engine here, so the pins also guard the engine's cache-equals-inline
//! property on top of the simulator itself.

use relief::bench::campaign::{execute, Ctx, ExecOptions};
use relief::bench::experiments::grid;
use relief::bench::{PolicySweep, MAIN_POLICIES};
use relief::prelude::*;

/// Modeled solo compute times (µs) vs the paper's Table II, with the
/// calibration tolerance EXPERIMENTS.md promises.
#[test]
fn table2_compute_times_stay_calibrated() {
    let paper_and_ours: [(App, f64, f64); 5] = [
        (App::Canny, 3539.37, 3538.92),
        (App::Deblur, 15610.58, 15609.91),
        (App::Gru, 1249.31, 1249.23),
        (App::Harris, 6157.30, 6156.82),
        (App::Lstm, 1470.02, 1469.93),
    ];
    let specs = App::ALL.iter().map(|&app| grid::solo_run(app, true)).collect();
    let results = execute(specs, &ExecOptions { jobs: 2, ..Default::default() });
    assert!(results.failures().is_empty(), "{:?}", results.failures());
    let ctx = Ctx::from_results(&results);
    for (app, paper_us, pinned_us) in paper_and_ours {
        let r = ctx.run(&grid::solo_run(app, true));
        let modeled = r.per_app_compute_time[app.symbol()].as_us_f64();
        let vs_paper = 100.0 * (modeled - paper_us).abs() / paper_us;
        assert!(
            vs_paper <= 0.02,
            "{app:?}: modeled compute {modeled:.2} us drifted {vs_paper:.4}% from the \
             paper's {paper_us:.2} us (tolerance 0.02%)"
        );
        // And the exact modeled value is pinned to EXPERIMENTS.md.
        assert!(
            (modeled - pinned_us).abs() < 0.005,
            "{app:?}: modeled compute {modeled:.2} us no longer matches the \
             {pinned_us:.2} us recorded in EXPERIMENTS.md"
        );
    }
}

/// Solo memory-time pins for both memory-system variants (EXPERIMENTS.md
/// Table II "ours" columns, ±0.5 µs).
#[test]
fn table2_memory_times_match_experiments_md() {
    let pins: [(App, f64, f64); 5] = [
        (App::Canny, 222.19, 101.64),
        (App::Deblur, 475.53, 232.16),
        (App::Gru, 3409.74, 1715.02),
        (App::Harris, 328.96, 165.21),
        (App::Lstm, 4059.21, 2019.46),
    ];
    let ctx = Ctx::empty();
    for (app, nofwd_us, ideal_us) in pins {
        let nofwd = ctx.run(&grid::solo_run(app, false)).per_app_mem_time[app.symbol()];
        let ideal = ctx.run(&grid::solo_run(app, true)).per_app_mem_time[app.symbol()];
        assert!(
            (nofwd.as_us_f64() - nofwd_us).abs() < 0.5,
            "{app:?}: no-forwarding mem time {:.2} us != pinned {nofwd_us:.2} us",
            nofwd.as_us_f64()
        );
        assert!(
            (ideal.as_us_f64() - ideal_us).abs() < 0.5,
            "{app:?}: ideal mem time {:.2} us != pinned {ideal_us:.2} us",
            ideal.as_us_f64()
        );
    }
}

/// Fig. 4 high-contention gmeans and the paper's headline ordering:
/// RELIEF forwards strictly more than every baseline at every contention
/// level, exceeding 65 % under high contention while no baseline reaches
/// 30 %.
#[test]
fn fig4_forwarding_rates_and_ordering_hold() {
    let mixes = Contention::High.mixes();
    let specs = mixes
        .iter()
        .flat_map(|m| MAIN_POLICIES.iter().map(|&p| grid::mix_run(p, Contention::High, m)))
        .collect();
    let results = execute(specs, &ExecOptions { jobs: 4, ..Default::default() });
    assert!(results.failures().is_empty(), "{:?}", results.failures());
    let ctx = Ctx::from_results(&results);
    let sweep = PolicySweep::collect_with(&ctx, Contention::High, &MAIN_POLICIES, |r| {
        r.stats.forward_percent()
    });
    let gmeans = sweep.gmeans();
    // EXPERIMENTS.md high-contention row: FCFS, GEDF-D, GEDF-N, LAX,
    // HetSched, RELIEF (values rounded to 0.1 there).
    let pinned = [25.2, 26.0, 20.6, 21.4, 21.5, 65.8];
    for (i, (policy, pin)) in MAIN_POLICIES.iter().zip(pinned).enumerate() {
        assert!(
            (gmeans[i] - pin).abs() < 0.05,
            "{policy}: high-contention fwd+coloc gmean {:.2}% != pinned {pin}%",
            gmeans[i]
        );
    }
    let relief = gmeans[5];
    assert!(relief > 65.0, "RELIEF must keep >65% forwarding, got {relief:.1}%");
    for (i, policy) in MAIN_POLICIES.iter().enumerate().take(5) {
        assert!(
            gmeans[i] < 30.0 && relief > gmeans[i],
            "{policy} gmean {:.1}% must stay below RELIEF's {relief:.1}% (and <30%)",
            gmeans[i]
        );
    }
}
