//! Fault-injection integration suite: the determinism, recovery, and
//! accounting contracts of the `relief-fault` layer, checked end to end
//! through the simulator, the campaign engine, and the trace subsystem.
//!
//! 1. **Schedule determinism** — a fault plan is a pure function of its
//!    seed: same config → byte-identical schedule digest, different seed
//!    → a different schedule.
//! 2. **Jobs-invariance** — a faulted resilience campaign renders
//!    byte-identical reports at `--jobs 1` and `--jobs N`.
//! 3. **Replay** — two runs of the same faulted configuration produce a
//!    clean trace diff (no divergence, identical text export).
//! 4. **Rate-0 inertness** — an explicit zero-rate fault config leaves
//!    `RunStats` bit-identical to a config-default run, so every golden
//!    output is unchanged by the fault layer's existence.
//! 5. **Recovery correctness** — under task and DMA faults, no policy
//!    deadlocks, precedence is never violated by re-queued tasks, and
//!    retry budgets are respected (every faulted task either completes
//!    or is aborted after exactly `max_retries + 1` attempts).
//! 6. **Graceful degradation** — with unit outages enabled the workload
//!    still makes progress, and the event-derived fault counters
//!    reconcile with the simulator's own `FaultStats`.

use relief::bench::campaign::{execute, ExecOptions, WorkloadSpec};
use relief::bench::resilience::ResilienceSpec;
use relief::metrics::FaultStats;
use relief::prelude::*;
use relief_accel::SimResult;
use relief_trace::event::{EventKind, TaskRef};
use relief_trace::{first_divergence_events, text, EventCounters, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A fault config injecting task and DMA faults at `rate`, with unit
/// outages every ~`mttf_us` microseconds when nonzero.
fn faulty(rate: f64, mttf_us: u64) -> FaultConfig {
    FaultConfig {
        task_fault_rate: rate,
        dma_fault_rate: rate,
        unit_mttf_ps: mttf_us * 1_000_000,
        ..FaultConfig::default()
    }
}

/// A→{B,C}→D diamond over two accelerator types (the conformance shape).
fn diamond(name: &str, deadline_us: u64) -> Arc<Dag> {
    let mut b = DagBuilder::new(name, Dur::from_us(deadline_us));
    let n0 = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(40)).with_output_bytes(32_768));
    let n1 = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(60)).with_output_bytes(16_384));
    let n2 = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(30)).with_output_bytes(16_384));
    let n3 = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(50)).with_output_bytes(8_192));
    b.add_edge(n0, n1).unwrap();
    b.add_edge(n0, n2).unwrap();
    b.add_edge(n1, n3).unwrap();
    b.add_edge(n2, n3).unwrap();
    Arc::new(b.build().expect("diamond is a valid dag"))
}

fn workload() -> Vec<AppSpec> {
    vec![
        AppSpec::once("D1", diamond("d1", 400)),
        AppSpec::once("D2", diamond("d2", 500)),
        AppSpec::once("D3", diamond("d3", 450)),
    ]
}

/// Runs the diamond workload under `policy` with `fault` injected on a
/// 2×A + 2×B generic platform and returns the full event stream.
fn traced_faulted_run(policy: PolicyKind, fault: FaultConfig) -> (SimResult, Vec<TraceEvent>) {
    let cfg = SocConfig::generic(vec![2, 2], policy).with_fault(fault);
    let ring = RingBufferSink::shared(1 << 20);
    let mut tracer = Tracer::off();
    tracer.attach(ring.clone());
    let result = SocSim::new(cfg, workload()).with_tracer(&tracer).run();
    let ring = ring.borrow();
    assert_eq!(ring.dropped(), 0, "fault trace must not overflow");
    (result, ring.snapshot())
}

/// Compute spans per task: (start_ps, end_ps, accelerator instance).
/// Faulted attempts emit no `ComputeEnd`, so even under retries every
/// completed task has exactly one span.
fn compute_spans(events: &[TraceEvent]) -> BTreeMap<(u32, u32), (u64, u64, u32)> {
    let mut spans = BTreeMap::new();
    for ev in events {
        if let EventKind::ComputeEnd { task, inst, start_ps, .. } = &ev.kind {
            let prev = spans.insert((task.instance, task.node), (*start_ps, ev.at_ps, *inst));
            assert!(prev.is_none(), "task {task} published two compute spans");
        }
    }
    spans
}

fn key(t: &TaskRef) -> (u32, u32) {
    (t.instance, t.node)
}

#[test]
fn fault_schedule_is_a_pure_function_of_the_seed() {
    let cfg = faulty(0.1, 500);
    let a = FaultPlan::new(cfg.clone()).schedule_digest(8, 8, 64);
    let b = FaultPlan::new(cfg.clone()).schedule_digest(8, 8, 64);
    assert_eq!(a, b, "same seed and spec must yield a byte-identical fault schedule");
    assert!(a.contains("task "), "rate 0.1 over 512 identities must schedule some task fault");
    let reseeded = FaultPlan::new(FaultConfig { seed: 0x5EED, ..cfg });
    assert_ne!(a, reseeded.schedule_digest(8, 8, 64), "reseeding must move the schedule");
}

#[test]
fn faulted_campaign_reports_are_byte_identical_across_jobs() {
    let mixes = Contention::Low.mixes();
    let spec = ResilienceSpec {
        rates: vec![0.0, 0.02],
        policies: vec![PolicyKind::Fcfs, PolicyKind::Relief],
        workload: WorkloadSpec::mix(Contention::Low, &mixes[0]),
        ..Default::default()
    };
    spec.validate().unwrap();
    let serial =
        execute(spec.campaign().expand(), &ExecOptions { jobs: 1, ..Default::default() });
    let parallel =
        execute(spec.campaign().expand(), &ExecOptions { jobs: 4, ..Default::default() });
    assert!(serial.failures().is_empty(), "{:?}", serial.failures());
    assert!(serial.mismatched().is_empty(), "{:?}", serial.mismatched());
    assert_eq!(
        serial.report(),
        parallel.report(),
        "faulted campaign stdout must not depend on --jobs"
    );
    assert_eq!(spec.render(&serial), spec.render(&parallel));
}

#[test]
fn repeated_faulted_runs_have_a_clean_trace_diff() {
    let (_, a) = traced_faulted_run(PolicyKind::Relief, faulty(0.25, 0));
    let (_, b) = traced_faulted_run(PolicyKind::Relief, faulty(0.25, 0));
    assert!(
        a.iter().any(|e| matches!(
            e.kind,
            EventKind::TaskFaulted { .. } | EventKind::DmaFaulted { .. }
        )),
        "rate 0.25 must inject at least one fault into the diamond workload"
    );
    assert!(
        first_divergence_events(&a, &b).is_none(),
        "identical faulted runs must not diverge"
    );
    assert_eq!(text::to_text(&a), text::to_text(&b));
}

#[test]
fn zero_rate_fault_config_is_bit_inert() {
    let apps = || {
        vec![
            AppSpec::once("C", App::Canny.dag()),
            AppSpec::once("L", App::Lstm.dag()),
        ]
    };
    let plain = SocSim::new(SocConfig::mobile(PolicyKind::Relief), apps()).run();
    // A reseeded but zero-rate config: the seed alone must change nothing.
    let zeroed = FaultConfig { seed: 0x1234, ..FaultConfig::default() };
    assert!(!zeroed.enabled());
    let guarded =
        SocSim::new(SocConfig::mobile(PolicyKind::Relief).with_fault(zeroed), apps()).run();
    assert_eq!(plain.stats, guarded.stats, "rate-0 fault layer perturbed the simulation");
    assert_eq!(guarded.stats.faults, FaultStats::default());
    assert!(
        !format!("{:?}", guarded.stats).contains("faults"),
        "rate-0 stats must render exactly as the pre-fault goldens"
    );
}

#[test]
fn no_policy_deadlocks_or_breaks_precedence_under_faults() {
    let max_retries = FaultConfig::default().max_retries;
    for policy in PolicyKind::ALL {
        // `run()` returning at all is the no-deadlock half of the test:
        // a lost re-queue or a quarantine that strands ready work would
        // leave the event loop waiting forever.
        let (result, events) = traced_faulted_run(policy, faulty(0.25, 0));
        let spans = compute_spans(&events);
        assert!(!spans.is_empty(), "{policy}: no compute spans traced");

        let mut faults: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let mut aborted: BTreeSet<(u32, u32)> = BTreeSet::new();
        for ev in &events {
            match &ev.kind {
                // Precedence under re-queue: an input sourced from a
                // producer requires that producer's (unique, successful)
                // compute span to have ended first — and before the
                // consumer's own successful attempt started.
                EventKind::InputSourced { task, parent: Some(parent), .. } => {
                    let (_, parent_end, _) = *spans.get(&key(parent)).unwrap_or_else(|| {
                        panic!("{policy}: {task} sourced from unpublished parent {parent}")
                    });
                    assert!(
                        parent_end <= ev.at_ps,
                        "{policy}: {task} sourced an input at {} ps before its producer \
                         {parent} finished at {parent_end} ps",
                        ev.at_ps
                    );
                    if let Some(&(child_start, _, _)) = spans.get(&key(task)) {
                        assert!(
                            parent_end <= child_start,
                            "{policy}: re-queued {task} started compute at {child_start} ps \
                             before its parent {parent} finished at {parent_end} ps"
                        );
                    }
                }
                EventKind::TaskFaulted { task, attempt, .. } => {
                    assert!(
                        *attempt <= max_retries,
                        "{policy}: {task} faulted on attempt {attempt} past the retry budget"
                    );
                    *faults.entry(key(task)).or_insert(0) += 1;
                }
                EventKind::TaskAborted { task, attempts } => {
                    assert_eq!(
                        *attempts,
                        max_retries + 1,
                        "{policy}: {task} aborted without exhausting its retry budget"
                    );
                    aborted.insert(key(task));
                }
                _ => {}
            }
        }
        assert!(
            faults.values().sum::<u32>() > 0,
            "{policy}: rate 0.25 injected no task faults"
        );
        // Bounded retries: every faulted task either recovered (has a
        // compute span) or was aborted — never silently dropped.
        for (task, n) in &faults {
            assert!(*n <= max_retries + 1, "{policy}: task {task:?} faulted {n} times");
            assert!(
                spans.contains_key(task) || aborted.contains(task),
                "{policy}: faulted task {task:?} neither completed nor aborted"
            );
        }
        assert_eq!(
            result.stats.faults.task_faults,
            u64::from(faults.values().sum::<u32>()),
            "{policy}: traced task faults disagree with RunStats"
        );
    }
}

#[test]
fn quarantine_degrades_gracefully_and_counters_reconcile() {
    for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
        let fault = FaultConfig {
            task_fault_rate: 0.05,
            dma_fault_rate: 0.05,
            unit_mttf_ps: 200_000_000,  // ~200 us between outages
            unit_repair_ps: 100_000_000, // 100 us quarantine
            ..FaultConfig::default()
        };
        let cfg = SocConfig::mobile(policy).with_fault(fault);
        let ring = RingBufferSink::shared(1 << 21);
        let mut tracer = Tracer::off();
        tracer.attach(ring.clone());
        let apps = vec![
            AppSpec::once("C", App::Canny.dag()),
            AppSpec::once("L", App::Lstm.dag()),
        ];
        let result = SocSim::new(cfg, apps).with_tracer(&tracer).run();
        let events = ring.borrow_mut().take();
        assert_eq!(ring.borrow().dropped(), 0);

        let f = &result.stats.faults;
        assert!(f.injected() > 0, "{policy}: no faults injected");
        assert!(f.unit_quarantines > 0, "{policy}: MTTF 200 us produced no quarantines");
        assert!(f.recovered > 0, "{policy}: no faulted task recovered");
        // Graceful degradation: outages and retries slow the workload
        // down, but it still completes.
        let done: u64 = result.stats.apps.values().map(|a| a.dags_completed).sum();
        assert!(done >= 1, "{policy}: quarantine starved the workload entirely");

        // Event-derived counters must agree with the simulator's own
        // accounting — including the fault fields.
        let counters = EventCounters::from_events(&events);
        let mismatches = relief::metrics::reconcile(&counters, &result.stats);
        assert!(
            mismatches.is_empty(),
            "{policy}: {}",
            mismatches.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
        );
        let miss_events = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FaultAttributedMiss { .. }))
            .count() as u64;
        assert_eq!(
            miss_events, f.fault_attributed_misses,
            "{policy}: fault-attributed misses disagree with the trace"
        );
    }
}
