//! Metamorphic properties of the simulator: relations that must hold
//! between *pairs* of runs whose inputs differ in a controlled way, so
//! they catch modeling bugs no single-run golden value can see.
//!
//! 1. **Bandwidth monotonicity** — doubling the interconnect bandwidth
//!    must never *increase* any application's time spent on data
//!    movement.
//! 2. **Laxity monotonicity** — uniformly loosening every DAG deadline
//!    must never increase RELIEF's count of missed DAG deadlines (the
//!    escalation feasibility check gets strictly easier, never harder).
//!
//! Both properties are checked with zero compute jitter so each pair of
//! runs differs only in the mutated parameter. Workload seeds come from
//! the in-tree `SplitMix64` generator and are pinned after empirical
//! validation; a failure on any of them is a genuine regression, not
//! flakiness.

use relief::prelude::*;
use relief_workloads::synthetic::{random_dag, SyntheticParams};

/// Runs `mix_symbols` solo-or-together with zero jitter at an
/// interconnect-bandwidth multiplier.
fn mem_times(symbols: &str, bw_scale: u64) -> Vec<(String, Dur)> {
    let mut cfg = SocConfig::mobile(PolicyKind::Relief);
    cfg.compute_jitter = 0.0;
    cfg.mem.interconnect_bandwidth *= bw_scale;
    let apps: Vec<AppSpec> = symbols
        .chars()
        .map(|c| {
            let app = App::from_symbol(c).expect("valid symbol");
            AppSpec::once(app.symbol(), app.dag())
        })
        .collect();
    let result = SocSim::new(cfg, apps).run();
    symbols
        .chars()
        .map(|c| {
            let sym = c.to_string();
            (sym.clone(), result.per_app_mem_time[sym.as_str()])
        })
        .collect()
}

/// Doubling interconnect bandwidth must not increase any app's memory
/// time — checked solo (pure speedup) and on multi-app mixes (where the
/// schedule may shift, but data movement must still not get slower).
#[test]
fn doubling_interconnect_bandwidth_never_slows_data_movement() {
    for symbols in ["C", "D", "G", "H", "L", "CGL", "DGH", "CDGHL"] {
        let base = mem_times(symbols, 1);
        let fast = mem_times(symbols, 2);
        for ((app, before), (_, after)) in base.iter().zip(&fast) {
            assert!(
                after <= before,
                "mix {symbols}: app {app} spent {:.2} us on data movement at 2x \
                 interconnect bandwidth vs {:.2} us at 1x",
                after.as_us_f64(),
                before.as_us_f64()
            );
        }
    }
}

/// RELIEF's DAG-deadline misses on a synthetic workload at a deadline
/// scale factor (percent). Three random DAGs per seed on a 3-type
/// generic platform, zero jitter.
fn relief_misses(seed: u64, deadline_scale_pct: u64) -> u64 {
    let params = SyntheticParams {
        deadline: Dur::from_us(350 * deadline_scale_pct / 100),
        ..SyntheticParams::default()
    };
    let apps: Vec<AppSpec> = (0..3)
        .map(|i| {
            let mut rng = SplitMix64::new(seed.wrapping_add(i));
            let dag_seed = rng.next_u64();
            AppSpec::once(format!("S{i}"), random_dag(&params, dag_seed))
        })
        .collect();
    let mut cfg = SocConfig::generic(vec![2, 2, 2], PolicyKind::Relief);
    cfg.compute_jitter = 0.0;
    let stats = SocSim::new(cfg, apps).run().stats;
    let done: u64 = stats.apps.values().map(|a| a.dags_completed).sum();
    let met: u64 = stats.apps.values().map(|a| a.dag_deadlines_met).sum();
    assert_eq!(done, 3, "every synthetic DAG must complete");
    done - met
}

/// Loosening every deadline must never create new RELIEF misses. The
/// base deadline (350 µs for 12-node DAGs) is tight enough that several
/// seeds miss at 100%, so the relation is exercised, not vacuous.
#[test]
fn loosening_deadlines_never_increases_relief_misses() {
    let mut tight_misses_seen = 0u64;
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        let mut prev = relief_misses(seed, 100);
        tight_misses_seen += prev;
        for scale in [125u64, 150, 200, 400] {
            let misses = relief_misses(seed, scale);
            assert!(
                misses <= prev,
                "seed {seed}: loosening deadlines to {scale}% increased RELIEF's \
                 misses from {prev} to {misses}"
            );
            prev = misses;
        }
        assert_eq!(relief_misses(seed, 400), 0, "seed {seed}: 4x deadlines must all be met");
    }
    assert!(
        tight_misses_seen > 0,
        "no seed missed at the tight deadline — the property is vacuous, tighten the base"
    );
}
