//! Oracle-replay conformance harness (run by `xtask check`).
//!
//! Three contracts pin `relief-oracle` against the simulator:
//!
//! 1. **Dominance** — the oracle bound is ≤ every online policy's
//!    makespan, on every Table II scenario and across a 20+-seed sweep
//!    of random synthetic workloads. This holds by construction (each
//!    online run is an incumbent), so a violation means the incumbent
//!    bookkeeping broke.
//! 2. **Prediction = replay, bit-exactly** — the makespan the oracle
//!    reports is reproduced, to the picosecond, by feeding its winning
//!    schedule back through the full simulator via `ScheduleReplay`.
//!    There is no independent cost model to drift.
//! 3. **Determinism and monotonicity** — `solve` is a pure function of
//!    its inputs (so campaign tables are byte-identical at any `--jobs`),
//!    and widening the beam ladder never worsens the bound.
//!
//! Plus the differential contract on the replay policy itself: replaying
//! a recorded RELIEF run reproduces its `RunStats` bit-exactly.

use relief::oracle::{solve, OracleOptions, ONLINE_POLICIES};
use relief::prelude::*;
use relief_core::{ScheduleRecorder, ScheduleReplay};
use relief_workloads::synthetic::{random_dag, SyntheticParams};

/// Options small enough for a test battery: the incumbents carry the
/// bound even when the search budget is tiny, so correctness properties
/// are budget-independent.
fn quick() -> OracleOptions {
    OracleOptions { beam_width: 2, max_expansions: 400 }
}

/// A seeded synthetic workload: one or two random DAGs on a small
/// generic platform (two types, 1 and 2 instances — asymmetric on
/// purpose so placement matters).
fn synthetic_scenario(seed: u64) -> (Vec<usize>, Vec<AppSpec>) {
    let params = SyntheticParams {
        nodes: 8,
        acc_types: 2,
        edge_prob: 0.3,
        compute_us: (5, 40),
        output_bytes: (4 * 1024, 64 * 1024),
        deadline: Dur::from_ms(5),
    };
    let mut apps = vec![AppSpec::once("S0", random_dag(&params, seed))];
    if seed.is_multiple_of(2) {
        apps.push(AppSpec::once("S1", random_dag(&params, seed.wrapping_add(0x9e37))));
    }
    (vec![1, 2], apps)
}

/// Asserts the full conformance contract for one scenario: dominance
/// over every online policy, and bit-exact schedule replay.
fn assert_conformance(
    label: &str,
    instances: Vec<usize>,
    apps: &[AppSpec],
    opts: &OracleOptions,
) {
    let mk_cfg = move |p: PolicyKind| SocConfig::generic(instances.clone(), p);
    let res = solve(&mk_cfg, apps, opts).expect("closed deterministic scenario");

    assert_eq!(res.online.len(), ONLINE_POLICIES.len(), "{label}: all incumbents ran");
    for run in &res.online {
        assert!(
            res.makespan_ps <= run.makespan_ps,
            "{label}: oracle {} ps must not exceed {} at {} ps",
            res.makespan_ps,
            run.policy.name(),
            run.makespan_ps,
        );
    }
    let replayed = res.replay(&mk_cfg, apps);
    assert_eq!(
        replayed.stats.exec_time.as_ps(),
        res.makespan_ps,
        "{label}: predicted makespan must replay bit-exactly (from_search={})",
        res.from_search,
    );
}

/// Contract 1 + 2 on the paper's Table II scenarios: each benchmark
/// application alone on the mobile SoC.
#[test]
fn oracle_bounds_every_table_ii_scenario() {
    for app in App::ALL {
        let apps = vec![AppSpec::once(app.symbol(), app.dag())];
        let mk_cfg = SocConfig::mobile;
        let res = solve(mk_cfg, &apps, &quick()).expect("solo apps are closed workloads");
        for run in &res.online {
            assert!(
                res.makespan_ps <= run.makespan_ps,
                "{}: oracle {} ps exceeds {} at {} ps",
                app.symbol(),
                res.makespan_ps,
                run.policy.name(),
                run.makespan_ps,
            );
        }
        let replayed = res.replay(mk_cfg, &apps);
        assert_eq!(
            replayed.stats.exec_time.as_ps(),
            res.makespan_ps,
            "{}: prediction != replay",
            app.symbol(),
        );
    }
}

/// Contract 1 + 2 across 24 seeded random workloads — beyond the ISSUE's
/// 20-seed floor. Each seed checks all eleven online policies.
#[test]
fn oracle_dominates_online_policies_across_seeds() {
    for seed in 0..24u64 {
        let (instances, apps) = synthetic_scenario(seed);
        assert_conformance(&format!("seed {seed}"), instances, &apps, &quick());
    }
}

/// Contract 3a: `solve` is deterministic — two invocations produce
/// identical bounds, schedules, and per-policy makespans, which is what
/// lets the campaign engine render oracle tables byte-identically at any
/// `--jobs` level (rows are computed on worker threads but each row is a
/// pure function of its scenario).
#[test]
fn oracle_solve_is_deterministic() {
    let (instances, apps) = synthetic_scenario(7);
    let mk_cfg = |p: PolicyKind| SocConfig::generic(instances.clone(), p);
    let a = solve(mk_cfg, &apps, &quick()).expect("valid scenario");
    let b = solve(mk_cfg, &apps, &quick()).expect("valid scenario");
    assert_eq!(a.makespan_ps, b.makespan_ps);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.from_search, b.from_search);
    assert_eq!(a.expansions, b.expansions);
    let mk: Vec<_> = a.online.iter().map(|r| (r.policy, r.makespan_ps)).collect();
    let mk2: Vec<_> = b.online.iter().map(|r| (r.policy, r.makespan_ps)).collect();
    assert_eq!(mk, mk2);
}

/// Contract 3b: the width ladder makes the bound monotone in beam width
/// (pass `w` reruns widths `1..=w` and keeps the min, so more width can
/// only add candidates).
#[test]
fn oracle_bound_is_monotone_in_beam_width() {
    let (instances, apps) = synthetic_scenario(3);
    let mk_cfg = |p: PolicyKind| SocConfig::generic(instances.clone(), p);
    let mut prev = u64::MAX;
    for width in 1..=3 {
        let opts = OracleOptions { beam_width: width, max_expansions: 2_000 };
        let res = solve(mk_cfg, &apps, &opts).expect("valid scenario");
        assert!(
            res.makespan_ps <= prev,
            "width {width} worsened the bound: {} > {prev}",
            res.makespan_ps,
        );
        prev = res.makespan_ps;
    }
}

/// Differential contract: recording a live RELIEF run and replaying its
/// schedule under the *same* configuration reproduces the run's entire
/// `RunStats` bit-exactly (compared via `Debug`, which renders every
/// field). The replay consults no laxity and performs no escalations —
/// the launch plan plus the recorded write-back decisions carry all of
/// the policy's observable behavior.
#[test]
fn replaying_a_recorded_relief_run_reproduces_runstats_bit_exactly() {
    for mix in Contention::Medium.mixes() {
        let cfg = SocConfig::mobile(PolicyKind::Relief);
        let apps = mix.workload();
        let recorder = ScheduleRecorder::shared();
        let tracer = Tracer::to_sink(recorder.clone());
        let live = SocSim::new(cfg.clone(), apps.clone()).with_tracer(&tracer).run();
        let schedule = recorder.borrow().schedule();

        let replay = ScheduleReplay::new(&schedule, &cfg.acc_instances)
            .impersonating(PolicyKind::Relief);
        let replayed = SocSim::new(cfg, apps).with_policy_object(Box::new(replay)).run();

        assert_eq!(
            format!("{:?}", live.stats),
            format!("{:?}", replayed.stats),
            "mix {}: replayed RunStats diverged",
            mix.label(),
        );
    }
}

/// Same differential contract for every other online policy on one mix:
/// the replay machinery is policy-agnostic.
#[test]
fn replay_is_bit_exact_for_every_online_policy() {
    let mix = Contention::High.mixes().into_iter().next().expect("high mixes exist");
    for policy in ONLINE_POLICIES {
        let cfg = SocConfig::mobile(policy);
        let apps = mix.workload();
        let recorder = ScheduleRecorder::shared();
        let tracer = Tracer::to_sink(recorder.clone());
        let live = SocSim::new(cfg.clone(), apps.clone()).with_tracer(&tracer).run();
        let schedule = recorder.borrow().schedule();

        let replay =
            ScheduleReplay::new(&schedule, &cfg.acc_instances).impersonating(policy);
        let replayed = SocSim::new(cfg, apps).with_policy_object(Box::new(replay)).run();

        assert_eq!(
            format!("{:?}", live.stats),
            format!("{:?}", replayed.stats),
            "{}: replayed RunStats diverged on {}",
            policy.name(),
            mix.label(),
        );
    }
}

/// Adaptive regression: an epoch longer than the whole run means the
/// policy never re-evaluates its mode, so a run started in RELIEF mode is
/// bit-identical to plain RELIEF under the same configuration (same
/// insert-cost model: the policy object is swapped under a RELIEF config).
#[test]
fn adaptive_with_epoch_beyond_horizon_matches_starting_policy_bit_exactly() {
    use relief_core::{Adaptive, AdaptiveParams, SchedMode};
    let mix = Contention::Medium.mixes().into_iter().next().expect("medium mixes exist");

    let cfg = SocConfig::mobile(PolicyKind::Relief);
    let relief = SocSim::new(cfg.clone(), mix.workload()).run();

    let frozen = Adaptive::with_params(AdaptiveParams {
        epoch: Dur::from_ms(10_000), // far past any closed-run makespan
        ..AdaptiveParams::default()
    })
    .starting_in(SchedMode::Relief);
    let adaptive = SocSim::new(cfg, mix.workload())
        .with_policy_object(Box::new(frozen))
        .run();

    assert_eq!(
        format!("{:?}", relief.stats),
        format!("{:?}", adaptive.stats),
        "frozen-epoch Adaptive(RELIEF) diverged from RELIEF",
    );
}

/// Adaptive regression: a square-wave load (alternating bursts and idle
/// gaps) with hysteresis must not thrash — the mode switches at most once
/// per pressure transition, not once per scheduling event. Driven through
/// the full simulator: bursts of parallel DAGs arrive each epoch.
#[test]
fn adaptive_square_wave_load_does_not_thrash() {
    use relief_core::{Adaptive, AdaptiveParams};

    // Two bursts of 6 parallel single-node chains separated by a long
    // idle gap. Queue depth crosses depth_hi inside each burst and
    // drains to zero between them: the mode may rise and relax once per
    // burst, so switches must stay well below the scheduler-event count.
    let mk_chain = |label: &str| {
        let mut b = DagBuilder::new(label, Dur::from_us(500));
        let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(30)).with_output_bytes(8192));
        let c = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(30)));
        b.add_edge(a, c).expect("chain edge");
        std::sync::Arc::new(b.build().expect("valid chain"))
    };
    let mut apps = Vec::new();
    for burst in 0..2u64 {
        for i in 0..6u64 {
            apps.push(
                AppSpec::once(format!("b{burst}n{i}"), mk_chain(&format!("c{burst}{i}")))
                    .arriving_at(Time::from_us(burst * 400)),
            );
        }
    }

    let params = AdaptiveParams { epoch: Dur::from_us(20), ..AdaptiveParams::default() };
    let policy = Adaptive::with_params(params);
    let cfg = SocConfig::generic(vec![1], PolicyKind::Adaptive);
    let result = SocSim::new(cfg.clone(), apps.clone())
        .with_policy_object(Box::new(Adaptive::with_params(params)))
        .run();
    assert!(result.stats.exec_time.as_ps() > 0);

    // Re-run at the policy level to observe the switch counter (the sim
    // consumes the boxed policy). Epochs tick ~40× across the run; the
    // hysteresis band must keep mode flips to a handful.
    let mut p = policy;
    let mut queues = ReadyQueues::new(1);
    for burst in 0..2u64 {
        let now = Time::from_us(burst * 400);
        let mut batch: Vec<TaskEntry> = (0..6)
            .map(|i| {
                TaskEntry::new(
                    TaskKey::new((burst * 6 + i) as u32, 0),
                    AccTypeId(0),
                    Dur::from_us(30),
                    now + Dur::from_us(500),
                )
                .with_seq(burst * 6 + i)
            })
            .collect();
        relief_core::Policy::enqueue_ready(&mut p, &mut queues, &mut batch, now, &[1]);
        // Drain one entry per epoch tick, simulating service.
        for tick in 1..=20u64 {
            let t = now + Dur::from_us(tick * 25);
            let _ = relief_core::Policy::pop(&mut p, &mut queues, AccTypeId(0), t);
        }
    }
    assert!(
        p.switches() <= 4,
        "square-wave load must switch at most once per transition, saw {}",
        p.switches(),
    );
}
