//! Property-based tests: simulator invariants over random task graphs,
//! random platforms, and every scheduling policy.

use proptest::prelude::*;
use relief::prelude::*;
use relief_workloads::synthetic::{random_dag, SyntheticParams};

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

fn params_strategy() -> impl Strategy<Value = SyntheticParams> {
    (1usize..20, 1u32..4, 0.05f64..0.6).prop_map(|(nodes, acc_types, edge_prob)| {
        SyntheticParams { nodes, acc_types, edge_prob, ..SyntheticParams::default() }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every node of every DAG executes exactly once, every edge is
    /// consumed, and forwards + colocations never exceed the edge count —
    /// regardless of policy, platform width, or graph shape.
    #[test]
    fn all_work_completes_exactly_once(
        seed in 0u64..1000,
        params in params_strategy(),
        policy in policy_strategy(),
        wide in proptest::bool::ANY,
    ) {
        let dag = random_dag(&params, seed);
        let instances = if wide { vec![2; params.acc_types as usize] } else { vec![1; params.acc_types as usize] };
        let cfg = SocConfig::generic(instances, policy);
        let apps = vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())];
        let stats = SocSim::new(cfg, apps).run().stats;
        for app in stats.apps.values() {
            prop_assert_eq!(app.dags_completed, 1);
            prop_assert_eq!(app.nodes_completed, dag.len() as u64);
            prop_assert_eq!(app.edges_consumed, dag.edge_count() as u64);
            prop_assert!(app.forwards + app.colocations <= app.edges_consumed);
        }
        prop_assert_eq!(stats.edges_total, 2 * dag.edge_count() as u64);
    }

    /// Traffic conservation: with forwarding disabled, observed DRAM
    /// traffic equals the all-DRAM baseline exactly; with forwarding,
    /// total attributed movement never exceeds the baseline and DRAM
    /// traffic never exceeds the no-forwarding run's.
    #[test]
    fn traffic_conservation(
        seed in 0u64..1000,
        params in params_strategy(),
        policy in policy_strategy(),
    ) {
        let dag = random_dag(&params, seed);
        let instances = vec![1; params.acc_types as usize];
        let apps = || vec![AppSpec::once("A", dag.clone())];
        let fwd = SocSim::new(SocConfig::generic(instances.clone(), policy), apps()).run().stats;
        let nofwd = SocSim::new(
            SocConfig::generic(instances, policy).without_forwarding(),
            apps(),
        )
        .run()
        .stats;
        prop_assert_eq!(nofwd.traffic.dram_bytes(), nofwd.traffic.all_dram_bytes);
        prop_assert_eq!(nofwd.traffic.spad_to_spad_bytes, 0);
        prop_assert_eq!(nofwd.traffic.colocated_bytes, 0);
        prop_assert!(fwd.traffic.total_if_all_dram() <= fwd.traffic.all_dram_bytes);
        prop_assert!(fwd.traffic.dram_bytes() <= nofwd.traffic.dram_bytes());
        prop_assert_eq!(fwd.traffic.all_dram_bytes, nofwd.traffic.all_dram_bytes);
    }

    /// Execution time is bounded below by the compute critical path (no
    /// time travel) and the simulation always terminates.
    #[test]
    fn makespan_at_least_critical_path(
        seed in 0u64..1000,
        params in params_strategy(),
        policy in policy_strategy(),
    ) {
        let dag = random_dag(&params, seed);
        let timing = relief::dag::DagTiming::compute(&dag, |n| dag.node(n).compute);
        let cfg = SocConfig::generic(vec![1; params.acc_types as usize], policy);
        let stats = SocSim::new(cfg, vec![AppSpec::once("A", dag.clone())]).run().stats;
        // Jitter is bounded by 0.1%, so allow that much slack.
        let cp = timing.critical_path().as_ps() as f64 * 0.999;
        prop_assert!(stats.exec_time.as_ps() as f64 >= cp);
        // And compute busy time is exactly the sum of node computes
        // (within jitter).
        let total = dag.total_compute().as_ps() as f64;
        let busy = stats.accel_busy.as_ps() as f64;
        prop_assert!((busy - total).abs() <= total * 0.002);
    }

    /// Simulations are bit-deterministic for every policy.
    #[test]
    fn deterministic(
        seed in 0u64..200,
        policy in policy_strategy(),
    ) {
        let dag = random_dag(&SyntheticParams::default(), seed);
        let apps = || vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())];
        let a = SocSim::new(SocConfig::generic(vec![1, 1, 1], policy), apps()).run().stats;
        let b = SocSim::new(SocConfig::generic(vec![1, 1, 1], policy), apps()).run().stats;
        prop_assert_eq!(a, b);
    }

    /// Node deadlines met is monotone in the DAG deadline: relaxing the
    /// deadline never decreases the number of deadlines met (the schedule
    /// itself may differ for laxity-driven policies, but an infinitely
    /// loose deadline meets everything).
    #[test]
    fn loose_deadlines_meet_everything(
        seed in 0u64..500,
        policy in policy_strategy(),
    ) {
        let params = SyntheticParams {
            deadline: Dur::from_ms(10_000), // effectively unbounded
            ..SyntheticParams::default()
        };
        let dag = random_dag(&params, seed);
        let cfg = SocConfig::generic(vec![1, 1, 1], policy);
        let stats = SocSim::new(cfg, vec![AppSpec::once("A", dag.clone())]).run().stats;
        let a = &stats.apps["A"];
        prop_assert_eq!(a.node_deadlines_met, a.nodes_completed);
        prop_assert_eq!(a.dag_deadlines_met, 1);
    }

    /// RELIEF's feasibility check is safe: against a single application
    /// with a feasible deadline, enabling forwarding escalation never
    /// causes a deadline miss that LL would have avoided.
    #[test]
    fn relief_escalations_do_not_break_feasible_solo_runs(
        seed in 0u64..500,
    ) {
        let params = SyntheticParams { deadline: Dur::from_ms(50), ..SyntheticParams::default() };
        let dag = random_dag(&params, seed);
        let run = |policy| {
            let cfg = SocConfig::generic(vec![1, 1, 1], policy);
            SocSim::new(cfg, vec![AppSpec::once("A", dag.clone())]).run().stats
        };
        let ll = run(PolicyKind::Ll);
        let relief = run(PolicyKind::Relief);
        if ll.apps["A"].dag_deadlines_met == 1 {
            prop_assert_eq!(relief.apps["A"].dag_deadlines_met, 1);
        }
    }

    /// Dependency order is never violated: for every edge, the parent's
    /// compute span ends no later than the child's begins — checked from
    /// the recorded schedule trace under every policy.
    #[test]
    fn trace_respects_dependencies(
        seed in 0u64..500,
        params in params_strategy(),
        policy in policy_strategy(),
    ) {
        let dag = random_dag(&params, seed);
        let mut cfg = SocConfig::generic(vec![2; params.acc_types as usize], policy);
        cfg.record_trace = true;
        let result = SocSim::new(cfg, vec![AppSpec::once("A", dag.clone())]).run();
        prop_assert_eq!(result.trace.spans.len(), dag.len());
        for from in dag.node_ids() {
            for &to in dag.children(from) {
                prop_assert!(
                    result.trace.ran_before(TaskKey::new(0, from.0), TaskKey::new(0, to.0)),
                    "{policy}: {from} must finish before {to} starts"
                );
            }
        }
        // Spans on one instance never overlap (non-preemptive accelerators).
        for inst in 0..result.trace.instances() {
            let spans = result.trace.per_instance(inst);
            for pair in spans.windows(2) {
                prop_assert!(pair[0].end <= pair[1].start, "{policy}: overlap on acc{inst}");
            }
        }
    }

    /// The continuous mode always stops at the time limit.
    #[test]
    fn time_limit_is_respected(
        seed in 0u64..200,
        policy in policy_strategy(),
        limit_us in 100u64..2000,
    ) {
        let dag = random_dag(&SyntheticParams::default(), seed);
        let cfg = SocConfig::generic(vec![1, 1, 1], policy)
            .with_time_limit(Time::from_us(limit_us));
        let stats = SocSim::new(cfg, vec![AppSpec::continuous("A", dag)]).run().stats;
        prop_assert!(stats.exec_time <= Dur::from_us(limit_us));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Wider platforms never hurt: doubling every accelerator type count
    /// cannot increase the makespan of a drained workload (non-preemptive
    /// anomalies are possible in theory — Graham's bounds — but our
    /// launch-greedy manager with these policies should not regress on
    /// small graphs; treat violations > 5% as bugs).
    #[test]
    fn more_instances_do_not_badly_regress(
        seed in 0u64..200,
        params in params_strategy(),
    ) {
        let dag = random_dag(&params, seed);
        let apps = || vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())];
        let narrow = SocSim::new(
            SocConfig::generic(vec![1; params.acc_types as usize], PolicyKind::Fcfs),
            apps(),
        ).run().stats;
        let wide = SocSim::new(
            SocConfig::generic(vec![4; params.acc_types as usize], PolicyKind::Fcfs),
            apps(),
        ).run().stats;
        let n = narrow.exec_time.as_ps() as f64;
        let w = wide.exec_time.as_ps() as f64;
        prop_assert!(w <= n * 1.05, "wide {w} vs narrow {n}");
    }
}
