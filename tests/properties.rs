//! Property-style tests: simulator invariants over random task graphs,
//! random platforms, and every scheduling policy.
//!
//! The sandbox cannot fetch `proptest`, so cases are driven by the
//! in-tree SplitMix64 generator with fixed seeds: the same breadth of
//! random inputs, fully deterministic and shrink-free (a failure prints
//! the offending case's parameters, which are reproducible by seed).

use relief::prelude::*;
use relief_workloads::synthetic::{random_dag, SyntheticParams};

/// Deterministic case sampler shared by all properties.
struct Cases {
    rng: SplitMix64,
}

impl Cases {
    fn new(property_tag: u64) -> Self {
        Cases { rng: SplitMix64::new(0xC0FFEE ^ property_tag) }
    }

    fn seed(&mut self) -> u64 {
        self.rng.u64_below(1000)
    }

    fn params(&mut self) -> SyntheticParams {
        SyntheticParams {
            nodes: 1 + self.rng.usize_below(19),
            acc_types: 1 + self.rng.u32_below(3),
            edge_prob: 0.05 + 0.55 * self.rng.f64_unit(),
            ..SyntheticParams::default()
        }
    }

    fn policy(&mut self) -> PolicyKind {
        PolicyKind::ALL[self.rng.usize_below(PolicyKind::ALL.len())]
    }

    fn flag(&mut self) -> bool {
        self.rng.chance(0.5)
    }
}

/// Every node of every DAG executes exactly once, every edge is
/// consumed, and forwards + colocations never exceed the edge count —
/// regardless of policy, platform width, or graph shape.
#[test]
fn all_work_completes_exactly_once() {
    let mut cases = Cases::new(1);
    for _ in 0..48 {
        let (seed, params, policy, wide) =
            (cases.seed(), cases.params(), cases.policy(), cases.flag());
        let dag = random_dag(&params, seed);
        let width = if wide { 2 } else { 1 };
        let cfg = SocConfig::generic(vec![width; params.acc_types as usize], policy);
        let apps = vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())];
        let stats = SocSim::new(cfg, apps).run().stats;
        let ctx = format!("seed={seed} policy={policy} wide={wide}");
        for app in stats.apps.values() {
            assert_eq!(app.dags_completed, 1, "{ctx}");
            assert_eq!(app.nodes_completed, dag.len() as u64, "{ctx}");
            assert_eq!(app.edges_consumed, dag.edge_count() as u64, "{ctx}");
            assert!(app.forwards + app.colocations <= app.edges_consumed, "{ctx}");
        }
        assert_eq!(stats.edges_total, 2 * dag.edge_count() as u64, "{ctx}");
    }
}

/// Traffic conservation: with forwarding disabled, observed DRAM
/// traffic equals the all-DRAM baseline exactly; with forwarding,
/// total attributed movement never exceeds the baseline and DRAM
/// traffic never exceeds the no-forwarding run's.
#[test]
fn traffic_conservation() {
    let mut cases = Cases::new(2);
    for _ in 0..48 {
        let (seed, params, policy) = (cases.seed(), cases.params(), cases.policy());
        let dag = random_dag(&params, seed);
        let instances = vec![1; params.acc_types as usize];
        let apps = || vec![AppSpec::once("A", dag.clone())];
        let fwd = SocSim::new(SocConfig::generic(instances.clone(), policy), apps()).run().stats;
        let nofwd =
            SocSim::new(SocConfig::generic(instances, policy).without_forwarding(), apps())
                .run()
                .stats;
        let ctx = format!("seed={seed} policy={policy}");
        assert_eq!(nofwd.traffic.dram_bytes(), nofwd.traffic.all_dram_bytes, "{ctx}");
        assert_eq!(nofwd.traffic.spad_to_spad_bytes, 0, "{ctx}");
        assert_eq!(nofwd.traffic.colocated_bytes, 0, "{ctx}");
        assert!(fwd.traffic.total_if_all_dram() <= fwd.traffic.all_dram_bytes, "{ctx}");
        assert!(fwd.traffic.dram_bytes() <= nofwd.traffic.dram_bytes(), "{ctx}");
        assert_eq!(fwd.traffic.all_dram_bytes, nofwd.traffic.all_dram_bytes, "{ctx}");
    }
}

/// Execution time is bounded below by the compute critical path (no
/// time travel) and the simulation always terminates.
#[test]
fn makespan_at_least_critical_path() {
    let mut cases = Cases::new(3);
    for _ in 0..48 {
        let (seed, params, policy) = (cases.seed(), cases.params(), cases.policy());
        let dag = random_dag(&params, seed);
        let timing = relief::dag::DagTiming::compute(&dag, |n| dag.node(n).compute);
        let cfg = SocConfig::generic(vec![1; params.acc_types as usize], policy);
        let stats = SocSim::new(cfg, vec![AppSpec::once("A", dag.clone())]).run().stats;
        let ctx = format!("seed={seed} policy={policy}");
        // Jitter is bounded by 0.1%, so allow that much slack.
        let cp = timing.critical_path().as_ps() as f64 * 0.999;
        assert!(stats.exec_time.as_ps() as f64 >= cp, "{ctx}");
        // And compute busy time is exactly the sum of node computes
        // (within jitter).
        let total = dag.total_compute().as_ps() as f64;
        let busy = stats.accel_busy.as_ps() as f64;
        assert!((busy - total).abs() <= total * 0.002, "{ctx}");
    }
}

/// Simulations are bit-deterministic for every policy.
#[test]
fn deterministic() {
    let mut cases = Cases::new(4);
    for _ in 0..24 {
        let (seed, policy) = (cases.rng.u64_below(200), cases.policy());
        let dag = random_dag(&SyntheticParams::default(), seed);
        let apps = || vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())];
        let a = SocSim::new(SocConfig::generic(vec![1, 1, 1], policy), apps()).run().stats;
        let b = SocSim::new(SocConfig::generic(vec![1, 1, 1], policy), apps()).run().stats;
        assert_eq!(a, b, "seed={seed} policy={policy}");
    }
}

/// An effectively unbounded DAG deadline meets every node and DAG
/// deadline under every policy.
#[test]
fn loose_deadlines_meet_everything() {
    let mut cases = Cases::new(5);
    for _ in 0..48 {
        let (seed, policy) = (cases.rng.u64_below(500), cases.policy());
        let params = SyntheticParams {
            deadline: Dur::from_ms(10_000), // effectively unbounded
            ..SyntheticParams::default()
        };
        let dag = random_dag(&params, seed);
        let cfg = SocConfig::generic(vec![1, 1, 1], policy);
        let stats = SocSim::new(cfg, vec![AppSpec::once("A", dag.clone())]).run().stats;
        let a = &stats.apps["A"];
        let ctx = format!("seed={seed} policy={policy}");
        assert_eq!(a.node_deadlines_met, a.nodes_completed, "{ctx}");
        assert_eq!(a.dag_deadlines_met, 1, "{ctx}");
    }
}

/// RELIEF's feasibility check is safe: against a single application
/// with a feasible deadline, enabling forwarding escalation never
/// causes a deadline miss that LL would have avoided.
#[test]
fn relief_escalations_do_not_break_feasible_solo_runs() {
    let mut cases = Cases::new(6);
    for _ in 0..48 {
        let seed = cases.rng.u64_below(500);
        let params = SyntheticParams { deadline: Dur::from_ms(50), ..SyntheticParams::default() };
        let dag = random_dag(&params, seed);
        let run = |policy| {
            let cfg = SocConfig::generic(vec![1, 1, 1], policy);
            SocSim::new(cfg, vec![AppSpec::once("A", dag.clone())]).run().stats
        };
        let ll = run(PolicyKind::Ll);
        let relief = run(PolicyKind::Relief);
        if ll.apps["A"].dag_deadlines_met == 1 {
            assert_eq!(relief.apps["A"].dag_deadlines_met, 1, "seed={seed}");
        }
    }
}

/// Dependency order is never violated: for every edge, the parent's
/// compute span ends no later than the child's begins — checked from
/// the recorded schedule trace under every policy.
#[test]
fn trace_respects_dependencies() {
    let mut cases = Cases::new(7);
    for _ in 0..48 {
        let (seed, params, policy) = (cases.rng.u64_below(500), cases.params(), cases.policy());
        let dag = random_dag(&params, seed);
        let mut cfg = SocConfig::generic(vec![2; params.acc_types as usize], policy);
        cfg.record_trace = true;
        let result = SocSim::new(cfg, vec![AppSpec::once("A", dag.clone())]).run();
        let ctx = format!("seed={seed} policy={policy}");
        assert_eq!(result.trace.spans.len(), dag.len(), "{ctx}");
        for from in dag.node_ids() {
            for &to in dag.children(from) {
                assert!(
                    result.trace.ran_before(TaskKey::new(0, from.0), TaskKey::new(0, to.0)),
                    "{ctx}: {from} must finish before {to} starts"
                );
            }
        }
        // Spans on one instance never overlap (non-preemptive accelerators).
        for inst in 0..result.trace.instances() {
            let spans = result.trace.per_instance(inst);
            for pair in spans.windows(2) {
                assert!(pair[0].end <= pair[1].start, "{ctx}: overlap on acc{inst}");
            }
        }
    }
}

/// The continuous mode always stops at the time limit.
#[test]
fn time_limit_is_respected() {
    let mut cases = Cases::new(8);
    for _ in 0..48 {
        let seed = cases.rng.u64_below(200);
        let policy = cases.policy();
        let limit_us = 100 + cases.rng.u64_below(1900);
        let dag = random_dag(&SyntheticParams::default(), seed);
        let cfg =
            SocConfig::generic(vec![1, 1, 1], policy).with_time_limit(Time::from_us(limit_us));
        let stats = SocSim::new(cfg, vec![AppSpec::continuous("A", dag)]).run().stats;
        assert!(
            stats.exec_time <= Dur::from_us(limit_us),
            "seed={seed} policy={policy} limit={limit_us}us"
        );
    }
}

/// Wider platforms never hurt: quadrupling every accelerator type count
/// cannot increase the makespan of a drained workload (non-preemptive
/// anomalies are possible in theory — Graham's bounds — but our
/// launch-greedy manager with these policies should not regress on
/// small graphs; treat violations > 5% as bugs).
#[test]
fn more_instances_do_not_badly_regress() {
    let mut cases = Cases::new(9);
    for _ in 0..24 {
        let (seed, params) = (cases.rng.u64_below(200), cases.params());
        let dag = random_dag(&params, seed);
        let apps = || vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())];
        let narrow = SocSim::new(
            SocConfig::generic(vec![1; params.acc_types as usize], PolicyKind::Fcfs),
            apps(),
        )
        .run()
        .stats;
        let wide = SocSim::new(
            SocConfig::generic(vec![4; params.acc_types as usize], PolicyKind::Fcfs),
            apps(),
        )
        .run()
        .stats;
        let n = narrow.exec_time.as_ps() as f64;
        let w = wide.exec_time.as_ps() as f64;
        assert!(w <= n * 1.05, "seed={seed}: wide {w} vs narrow {n}");
    }
}
