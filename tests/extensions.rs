//! Integration tests for the extension and ablation variants
//! (§VII future work; feasibility-check ablation; design sweeps).

use relief::prelude::*;
use relief_metrics::summary::geometric_mean;
use relief_workloads::Contention;

fn run(policy: PolicyKind, mix: &Mix) -> RunStats {
    SocSim::new(SocConfig::mobile(policy), mix.workload()).run().stats
}

fn gmean_high(policy: PolicyKind, metric: impl Fn(&RunStats) -> f64) -> f64 {
    geometric_mean(Contention::High.mixes().iter().map(|m| metric(&run(policy, m))))
}

/// §VII: RELIEF over HetSched's laxity distribution "continues to offer
/// significant data movement cost savings" — it must stay far above the
/// plain HetSched baseline on forwards while remaining close to RELIEF.
#[test]
fn relief_het_keeps_most_forwards() {
    let relief = gmean_high(PolicyKind::Relief, RunStats::forward_percent);
    let het = gmean_high(PolicyKind::ReliefHet, RunStats::forward_percent);
    let hetsched = gmean_high(PolicyKind::HetSched, RunStats::forward_percent);
    assert!(het > 2.0 * hetsched, "RELIEF-HET ({het:.1}%) must dwarf HetSched ({hetsched:.1}%)");
    assert!(het > 0.8 * relief, "RELIEF-HET ({het:.1}%) must stay near RELIEF ({relief:.1}%)");
}

/// §VII: "the choice of laxity distribution presents a tradeoff between
/// QoS and fairness" — distributing laxity (SDR) limits how much any one
/// promotion can borrow, which softens the CDH pathology where plain
/// RELIEF over-promotes Deblur.
#[test]
fn relief_het_softens_the_cdh_anomaly() {
    let cdh = Contention::High
        .mixes()
        .into_iter()
        .find(|m| m.label() == "CDH")
        .expect("CDH exists");
    let relief = run(PolicyKind::Relief, &cdh).node_deadline_percent();
    let het = run(PolicyKind::ReliefHet, &cdh).node_deadline_percent();
    assert!(
        het > relief,
        "RELIEF-HET ({het:.1}%) should beat plain RELIEF ({relief:.1}%) on CDH"
    );
}

/// The unthrottled ablation is still bounded by the idle-instance budget,
/// so it completes all work; its deadline performance must never exceed
/// throttled RELIEF by a meaningful margin (the feasibility check only
/// ever *blocks* risky promotions).
#[test]
fn unthrottled_relief_is_no_safer_than_relief() {
    let relief = gmean_high(PolicyKind::Relief, RunStats::node_deadline_percent);
    let wild = gmean_high(PolicyKind::ReliefUnthrottled, RunStats::node_deadline_percent);
    assert!(
        wild <= relief + 1.0,
        "removing the feasibility check must not improve deadlines ({wild:.1} vs {relief:.1})"
    );
    // And it forwards at least as much — the check only costs forwards.
    let f_relief = gmean_high(PolicyKind::Relief, RunStats::forward_percent);
    let f_wild = gmean_high(PolicyKind::ReliefUnthrottled, RunStats::forward_percent);
    assert!(f_wild >= f_relief - 0.5);
}

/// The feasibility check protects a near-deadline victim in a targeted
/// scenario. Under a non-preemptive work-conserving manager, escalations
/// can only hurt queued tasks inside the ISR window between "a task is
/// ready to launch" and "the manager actually launches it" — so the
/// scenario stretches the modeled manager latency and lands a forwarding
/// candidate's arrival exactly inside the victim's window.
#[test]
fn feasibility_check_protects_tight_victims() {
    use std::sync::Arc;
    let node = |acc: u32, us: u64| {
        NodeSpec::new(AccTypeId(acc), Dur::from_us(us)).with_output_bytes(4096)
    };
    let mk_single = |name: &str, us: u64, ddl: u64| {
        let mut b = DagBuilder::new(name, Dur::from_us(ddl));
        b.add_node(node(1, us));
        Arc::new(b.build().expect("valid"))
    };
    // first occupies B for ~100us (its tighter deadline puts it ahead in
    // laxity order); the victim queues behind it with a deadline (215us)
    // it only just meets (~205us completion).
    let first = mk_single("first", 100, 150);
    let victim = mk_single("victim", 100, 215);
    // The A-producer launches with everything else at ~2.7us and completes
    // at ~103.7us — after B frees (~102.7us) but before the victim's
    // delayed launch event (~104.7us), making its 60us B-child an
    // escalation candidate right over the victim.
    let fwd = {
        let mut b = DagBuilder::new("fwd", Dur::from_us(2000));
        let p = b.add_node(node(0, 101));
        let c = b.add_node(node(1, 60));
        b.add_edge(p, c).expect("fresh");
        Arc::new(b.build().expect("valid"))
    };
    let apps = || {
        vec![
            AppSpec::once("first", first.clone()),
            AppSpec::once("victim", victim.clone()),
            AppSpec::once("fwd", fwd.clone()),
        ]
    };
    let run = |p: PolicyKind| {
        let mut cfg = SocConfig::generic(vec![1, 1], p);
        cfg.sched_base_cost = Dur::from_us(2);
        cfg.sched_insert_cost = Dur::from_ns(700);
        SocSim::new(cfg, apps()).run().stats
    };
    let throttled = run(PolicyKind::Relief);
    let wild = run(PolicyKind::ReliefUnthrottled);
    assert_eq!(
        throttled.apps["victim"].dag_deadlines_met, 1,
        "RELIEF's feasibility check must protect the victim (finished at \
         {:?})",
        throttled.apps["victim"].dag_runtimes
    );
    assert_eq!(
        wild.apps["victim"].dag_deadlines_met, 0,
        "the unthrottled ablation should sacrifice the victim (finished at \
         {:?})",
        wild.apps["victim"].dag_runtimes
    );
    // Both variants finish everything; only the order differed.
    for stats in [&throttled, &wild] {
        assert!(stats.apps.values().all(|a| a.dags_completed == 1));
    }
}

/// Triple-buffered outputs (Table IV's NUM_SPM_PARTITIONS = 3) add almost
/// nothing over double buffering, while single buffering collapses
/// forwarding — the design rationale for the paper's platform.
#[test]
fn double_buffering_is_the_knee() {
    let mix = Contention::High
        .mixes()
        .into_iter()
        .find(|m| m.label() == "CGL")
        .expect("CGL exists");
    let with_parts = |n: usize| {
        let mut cfg = SocConfig::mobile(PolicyKind::Relief);
        cfg.output_partitions = n;
        SocSim::new(cfg, mix.workload()).run().stats.forward_percent()
    };
    let one = with_parts(1);
    let two = with_parts(2);
    let three = with_parts(3);
    assert!(two > 3.0 * one, "double buffering must unlock forwarding ({one:.1} -> {two:.1})");
    assert!(three <= two * 1.15, "triple buffering adds little ({two:.1} -> {three:.1})");
}
