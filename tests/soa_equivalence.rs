//! Data-oriented-core property suite: the arena/SoA task state, packed
//! transfer rows, and cohort batch dispatch behind the default hot path
//! must be *observationally invisible*. `SocConfig::reference_hot_path`
//! swaps back the pre-optimisation structures, and this suite pins the
//! two paths bit-exact across a randomized sweep:
//!
//! 1. **Seed × policy rotation** — twenty distinct simulation seeds
//!    rotated through all eleven policies (the eight fairness-study
//!    policies plus the three extensions), with deterministic fault
//!    injection folded into every fourth seed.
//! 2. **Service mode** — open-loop Poisson arrivals with admission
//!    control, where mid-stream task insertion stresses the calendar
//!    queue's near rung and the arena's slot reuse (generation bumps).
//!
//! Every comparison covers the full `RunStats` Debug rendering (floats
//! render through their full shortest-round-trip form, so bit drift is
//! caught), per-app accounting, prediction samples, executed-task
//! traces, and the dispatched-event count.

use relief::bench::config_for;
use relief::bench::service::ServiceSpec;
use relief::prelude::*;
use relief_accel::SimResult;

/// All eleven schedulable policies: the fairness-study eight plus the
/// heterogeneity/throttling/adaptive extensions.
fn eleven_policies() -> Vec<PolicyKind> {
    let all: Vec<PolicyKind> =
        PolicyKind::ALL.iter().chain(PolicyKind::EXTENSIONS.iter()).copied().collect();
    assert_eq!(all.len(), 11);
    all
}

/// Runs `cfg` over `workload` on the optimised and the reference hot
/// path and asserts the two `SimResult`s are observationally identical.
fn assert_paths_agree(mut cfg: SocConfig, workload: &[AppSpec], what: &str) {
    cfg.record_trace = true;
    let run = |reference: bool| -> SimResult {
        let mut cfg = cfg.clone();
        cfg.reference_hot_path = reference;
        SocSim::new(cfg, workload.to_vec()).run()
    };
    let fast = run(false);
    let reference = run(true);

    assert_eq!(
        format!("{:?}", fast.stats),
        format!("{:?}", reference.stats),
        "{what}: RunStats diverged between hot paths"
    );
    assert_eq!(
        fast.per_app_mem_time, reference.per_app_mem_time,
        "{what}: per-app DMA accounting diverged"
    );
    assert_eq!(
        fast.per_app_compute_time, reference.per_app_compute_time,
        "{what}: per-app compute accounting diverged"
    );
    assert_eq!(
        fast.prediction.compute_rel_errors, reference.prediction.compute_rel_errors,
        "{what}: compute-prediction samples diverged"
    );
    assert_eq!(
        fast.prediction.dm_rel_errors, reference.prediction.dm_rel_errors,
        "{what}: data-movement-prediction samples diverged"
    );
    assert_eq!(
        fast.prediction.bw_rel_errors, reference.prediction.bw_rel_errors,
        "{what}: bandwidth-prediction samples diverged"
    );
    assert_eq!(fast.trace, reference.trace, "{what}: executed-task traces diverged");
    assert_eq!(
        fast.events_dispatched, reference.events_dispatched,
        "{what}: event counts diverged"
    );
}

/// Twenty seeds rotated across all eleven policies on a low-contention
/// mix, with deterministic task/DMA faults folded into every fourth
/// seed. Each policy is exercised at least once, under at least one
/// never-before-seen seed — a summation-order or slot-reuse bug in the
/// SoA path that only shows under a particular arrival interleaving has
/// twenty chances to surface.
#[test]
fn twenty_seeds_rotate_all_eleven_policies() {
    let eleven = eleven_policies();
    let mixes = Contention::Low.mixes();
    let mix = mixes.first().expect("low contention has mixes");
    let workload = mix.workload();
    for seed in 0..20u64 {
        let policy = eleven[(seed as usize) % eleven.len()];
        let mut cfg = config_for(policy, Contention::Low);
        // Distinct, aperiodic seeds — not just 0..20 — so the RNG
        // streams the two paths consume start far apart.
        cfg.seed = 0xD0C5_0000 ^ seed.wrapping_mul(0x9E37_79B9);
        let mut what = format!("seed {seed} {policy:?}");
        if seed % 4 == 3 {
            let fault_seed = cfg.seed ^ 0xFA17;
            cfg = cfg.with_fault(FaultConfig {
                seed: fault_seed,
                task_fault_rate: 0.02,
                dma_fault_rate: 0.02,
                ..FaultConfig::default()
            });
            what.push_str(" +faults");
        }
        assert_paths_agree(cfg, &workload, &what);
    }
}

/// Open-loop service mode on both paths: Poisson arrivals, admission
/// control, and three QoS tenants. Mid-stream DAG instantiation reuses
/// arena slots (generation bumps) and lands events on the calendar
/// queue's near rung while it is draining — the hardest traffic for the
/// batched dispatcher.
#[test]
fn service_mode_agrees_across_seeds_and_policies() {
    for (i, &(seed, policy)) in [
        (0x5E11, PolicyKind::Relief),
        (0x5E12, PolicyKind::Fcfs),
        (0x5E13, PolicyKind::Adaptive),
    ]
    .iter()
    .enumerate()
    {
        let spec = ServiceSpec {
            seed,
            rates: vec![150.0 + 50.0 * i as f64],
            duration_ps: 5_000_000_000, // 5 ms of arrivals
            warmup_ps: 1_000_000_000,
            policies: vec![policy],
            ..Default::default()
        };
        for run in spec.campaign().expand() {
            assert_paths_agree(
                run.config(),
                &run.apps(),
                &format!("service seed {seed:#x} {policy:?}"),
            );
        }
    }
}
