//! Service-mode integration suite: the determinism, inertness, and
//! accounting contracts of the `relief-service` layer, checked end to
//! end through the simulator, the campaign engine, and the trace
//! subsystem.
//!
//! 1. **Jobs-invariance** — a service campaign renders byte-identical
//!    reports at `--jobs 1`, `4`, and `8`.
//! 2. **Rate-0 inertness** — a disabled stream config (zero rates)
//!    leaves `RunStats` bit-identical to a config-default closed-loop
//!    run, so every golden output is unchanged by the service layer's
//!    existence.
//! 3. **Admission neutrality** — with an effectively infinite in-flight
//!    cap the admission controller admits everything and the run is
//!    bit-identical to an admission-off run.
//! 4. **Counter reconciliation** — under overload the event-derived
//!    arrival/admit/shed/complete counters reconcile with the
//!    simulator's own `ServiceStats`, and shedding actually happened.
//! 5. **QoS differentiation** — at an overloaded operating point the
//!    controller sheds and the `Latency` class keeps a strictly higher
//!    deadline attainment than `BestEffort`.

use relief::bench::campaign::{execute, ExecOptions};
use relief::bench::service::ServiceSpec;
use relief::prelude::*;
use relief_accel::SimResult;
use relief_service::AdmissionConfig;
use relief_trace::{EventCounters, TraceEvent};

/// The CGL tenant trio: one app spec per tenant, in tenant order.
fn cgl_apps() -> Vec<AppSpec> {
    vec![
        AppSpec::once("C", App::Canny.dag()),
        AppSpec::once("G", App::Gru.dag()),
        AppSpec::once("L", App::Lstm.dag()),
    ]
}

/// A three-tenant Poisson stream at `rate` requests/s per tenant with an
/// in-flight admission cap of `cap` (0 = admission off).
fn stream(rate: f64, cap: u32, duration_ms: u64) -> StreamConfig {
    StreamConfig {
        duration_ps: duration_ms * 1_000_000_000,
        warmup_ps: duration_ms * 100_000_000, // first 10%
        tenants: vec![
            TenantCfg::new(QosClass::Latency, rate),
            TenantCfg::new(QosClass::Standard, rate),
            TenantCfg::new(QosClass::BestEffort, rate),
        ],
        admission: AdmissionConfig { max_in_flight: cap, ..AdmissionConfig::default() },
        ..StreamConfig::default()
    }
}

/// Runs the CGL trio under `policy` with `stream` installed, capturing
/// the full event trace.
fn traced_stream_run(policy: PolicyKind, stream: StreamConfig) -> (SimResult, Vec<TraceEvent>) {
    let cfg = SocConfig::mobile(policy).with_stream(stream);
    let ring = RingBufferSink::shared(1 << 20);
    let mut tracer = Tracer::off();
    tracer.attach(ring.clone());
    let result = SocSim::new(cfg, cgl_apps()).with_tracer(&tracer).run();
    let ring = ring.borrow();
    assert_eq!(ring.dropped(), 0, "service trace must not overflow");
    (result, ring.snapshot())
}

#[test]
fn service_campaign_reports_are_byte_identical_across_jobs() {
    let spec = ServiceSpec {
        rates: vec![50.0, 400.0],
        duration_ps: 10_000_000_000,
        warmup_ps: 1_000_000_000,
        policies: vec![PolicyKind::Fcfs, PolicyKind::Relief],
        ..Default::default()
    };
    spec.validate().unwrap();
    let serial =
        execute(spec.campaign().expand(), &ExecOptions { jobs: 1, ..Default::default() });
    assert!(serial.failures().is_empty(), "{:?}", serial.failures());
    assert!(serial.mismatched().is_empty(), "{:?}", serial.mismatched());
    for jobs in [4, 8] {
        let parallel =
            execute(spec.campaign().expand(), &ExecOptions { jobs, ..Default::default() });
        assert_eq!(
            serial.report(),
            parallel.report(),
            "service campaign stdout must not depend on --jobs (jobs={jobs})"
        );
        assert_eq!(spec.render(&serial), spec.render(&parallel));
    }
}

#[test]
fn zero_rate_stream_is_bit_inert() {
    let plain = SocSim::new(SocConfig::mobile(PolicyKind::Relief), cgl_apps()).run();
    // An explicit stream config whose rates are all zero is disabled:
    // the closed-loop t=0 releases run exactly as without the service
    // layer, and RunStats renders without any `service` section.
    let zeroed = StreamConfig {
        duration_ps: 5_000_000_000,
        tenants: vec![
            TenantCfg::new(QosClass::Latency, 0.0),
            TenantCfg::new(QosClass::Standard, 0.0),
            TenantCfg::new(QosClass::BestEffort, 0.0),
        ],
        ..StreamConfig::default()
    };
    assert!(!zeroed.enabled());
    let cfg = SocConfig::mobile(PolicyKind::Relief).with_stream(zeroed);
    let streamed = SocSim::new(cfg, cgl_apps()).run();
    let (a, b) = (format!("{:?}", plain.stats), format!("{:?}", streamed.stats));
    assert_eq!(a, b, "zero-rate stream must leave RunStats bit-identical");
    assert!(!a.contains("service"), "clean runs must not render a service section: {a}");
    assert_eq!(plain.events_dispatched, streamed.events_dispatched);
}

#[test]
fn infinite_admission_cap_equals_admission_off() {
    let open = SocSim::new(
        SocConfig::mobile(PolicyKind::Relief).with_stream(stream(200.0, 0, 10)),
        cgl_apps(),
    )
    .run();
    let capped = SocSim::new(
        SocConfig::mobile(PolicyKind::Relief).with_stream(stream(200.0, 1_000_000, 10)),
        cgl_apps(),
    )
    .run();
    assert_eq!(
        format!("{:?}", open.stats),
        format!("{:?}", capped.stats),
        "an unreachable in-flight cap must admit exactly like admission-off"
    );
    assert_eq!(open.events_dispatched, capped.events_dispatched);
    assert_eq!(open.stats.service.shed_bucket() + open.stats.service.shed_capacity(), 0);
}

#[test]
fn overload_counters_reconcile_with_trace() {
    let (result, events) = traced_stream_run(PolicyKind::Relief, stream(400.0, 12, 20));
    let svc = &result.stats.service;
    assert!(svc.arrivals() > 0, "overload run saw no arrivals");
    assert!(svc.shed_capacity() > 0, "overload run shed nothing");
    assert_eq!(
        svc.arrivals(),
        svc.admitted() + svc.shed_bucket() + svc.shed_capacity(),
        "every arrival is either admitted or shed"
    );
    let counters = EventCounters::from_events(&events);
    let mismatches = relief::metrics::reconcile(&counters, &result.stats);
    assert!(mismatches.is_empty(), "{mismatches:?}");
    assert_eq!(counters.stream_arrivals, svc.arrivals());
    assert_eq!(counters.requests_shed_capacity, svc.shed_capacity());
}

#[test]
fn overload_sheds_and_latency_class_outranks_besteffort() {
    let (result, _) = traced_stream_run(PolicyKind::Relief, stream(400.0, 12, 30));
    let svc = &result.stats.service;
    assert!(svc.shed_capacity() > 0, "operating point is not overloaded");
    let lat = svc.classes[0].attainment();
    let be = svc.classes[2].attainment();
    assert!(
        lat > be,
        "Latency attainment {lat:.3} must exceed BestEffort {be:.3} under overload"
    );
    // The capacity shares shed BestEffort first, so its shed share of
    // arrivals must be at least the Latency class's.
    let lat_shed_share =
        svc.classes[0].shed() as f64 / svc.classes[0].arrivals.max(1) as f64;
    let be_shed_share =
        svc.classes[2].shed() as f64 / svc.classes[2].arrivals.max(1) as f64;
    assert!(
        be_shed_share >= lat_shed_share,
        "BestEffort shed share {be_shed_share:.3} below Latency {lat_shed_share:.3}"
    );
}
