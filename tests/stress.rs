//! Stress tests: many applications, deep queues, long continuous runs.

use relief::prelude::*;
use relief_workloads::synthetic::{random_dag, SyntheticParams};

/// Twenty random applications on a narrow platform: deep ready queues,
/// heavy partition pressure, every invariant must survive.
#[test]
fn twenty_apps_on_a_narrow_platform() {
    for policy in [PolicyKind::Fcfs, PolicyKind::Lax, PolicyKind::HetSched, PolicyKind::Relief] {
        let apps: Vec<AppSpec> = (0..20)
            .map(|i| {
                let params = SyntheticParams {
                    nodes: 15,
                    acc_types: 3,
                    edge_prob: 0.2,
                    deadline: Dur::from_ms(50),
                    ..SyntheticParams::default()
                };
                AppSpec::once(format!("a{i}"), random_dag(&params, i))
            })
            .collect();
        let stats = SocSim::new(SocConfig::generic(vec![1, 1, 1], policy), apps).run().stats;
        assert_eq!(stats.apps.len(), 20, "{policy}");
        for app in stats.apps.values() {
            assert_eq!(app.dags_completed, 1, "{policy}: {} unfinished", app.name);
            assert_eq!(app.nodes_completed, 15, "{policy}");
        }
        assert!(stats.forwards() + stats.colocations() <= stats.edges_total);
        assert!(stats.traffic.total_if_all_dram() <= stats.traffic.all_dram_bytes);
    }
}

/// The full five-application mix (beyond the paper's triples) still
/// drains; the paper skips it only because "combinations larger than 3
/// meet very few deadlines".
#[test]
fn all_five_applications_together() {
    let apps: Vec<AppSpec> =
        App::ALL.iter().map(|a| AppSpec::once(a.symbol(), a.dag())).collect();
    let stats = SocSim::new(SocConfig::mobile(PolicyKind::Relief), apps).run().stats;
    for app in stats.apps.values() {
        assert_eq!(app.dags_completed, 1, "{} unfinished", app.name);
    }
    // As the paper predicts, a 5-wide mix misses most RNN deadlines.
    assert!(stats.node_deadline_percent() < 100.0);
}

/// A long continuous run (200 ms, 4x the paper's cap) with the heaviest
/// RNN mix stays stable: bounded queues, monotone progress, no panic.
#[test]
fn long_continuous_run_is_stable() {
    let mix: Vec<AppSpec> = [App::Gru, App::Harris, App::Lstm]
        .iter()
        .map(|a| AppSpec::continuous(a.symbol(), a.dag()))
        .collect();
    let cfg = SocConfig::mobile(PolicyKind::Relief).with_time_limit(Time::from_ms(200));
    let result = SocSim::new(cfg, mix).run();
    let stats = &result.stats;
    assert_eq!(stats.exec_time, Dur::from_ms(200));
    // Roughly 4x the 50 ms GHL instance counts (Table VII: RELIEF
    // completes ~6-7 GRU, ~6 LSTM, ~2-3 Harris per 50 ms).
    assert!(stats.apps["G"].dags_completed >= 20, "got {}", stats.apps["G"].dags_completed);
    assert!(stats.apps["L"].dags_completed >= 16, "got {}", stats.apps["L"].dags_completed);
    assert!(stats.apps["H"].dags_completed >= 6, "got {}", stats.apps["H"].dags_completed);
    // Sanity on simulator effort: a 200 ms RNN-heavy run is a few hundred
    // thousand events, not billions.
    assert!(result.events_dispatched < 5_000_000);
}

/// Sixty-four single-node apps arriving simultaneously on one
/// accelerator: a worst case for sorted insertion and FIFO fairness.
#[test]
fn burst_arrival_of_many_tasks() {
    use std::sync::Arc;
    let single = {
        let mut b = DagBuilder::new("one", Dur::from_ms(100));
        b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(10)).with_output_bytes(1024));
        Arc::new(b.build().expect("valid"))
    };
    for policy in PolicyKind::ALL {
        let apps: Vec<AppSpec> =
            (0..64).map(|i| AppSpec::once(format!("t{i}"), single.clone())).collect();
        let stats = SocSim::new(SocConfig::generic(vec![1], policy), apps).run().stats;
        assert_eq!(
            stats.apps.values().map(|a| a.dags_completed).sum::<u64>(),
            64,
            "{policy}"
        );
        // Sequential 10us tasks: makespan at least 640us.
        assert!(stats.exec_time >= Dur::from_us(640), "{policy}: {}", stats.exec_time);
    }
}
