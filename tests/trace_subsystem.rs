//! End-to-end tests of the structured tracing subsystem: determinism of
//! the event stream, exporter well-formedness, divergence detection, and
//! consistency between event-derived counters and the simulator's own
//! statistics.

use relief::prelude::*;
use relief_accel::{SimResult, Trace};
use relief_trace::chrome::{to_chrome_json, is_well_formed_json, ChromeOptions};
use relief_trace::{
    first_divergence_events, first_divergence_lines, text, EventCounters, TraceEvent,
};
use relief_workloads::App;

/// Runs the Canny + LSTM lane-detection mix (§IV-C) under `policy` with a
/// lossless ring sink attached.
fn run_traced(policy: PolicyKind) -> (SimResult, Vec<TraceEvent>) {
    let ring = RingBufferSink::shared(1 << 20);
    let mut tracer = Tracer::off();
    tracer.attach(ring.clone());
    let apps = vec![
        AppSpec::once("C", App::Canny.dag()),
        AppSpec::once("L", App::Lstm.dag()),
    ];
    let mut cfg = SocConfig::mobile(policy);
    cfg.record_trace = true;
    let result = SocSim::new(cfg, apps).with_tracer(&tracer).run();
    let events = ring.borrow_mut().take();
    assert!(!events.is_empty(), "traced run must emit events");
    (result, events)
}

#[test]
fn same_seed_runs_produce_byte_identical_streams() {
    let (_, a) = run_traced(PolicyKind::Relief);
    let (_, b) = run_traced(PolicyKind::Relief);
    assert!(first_divergence_events(&a, &b).is_none());
    assert_eq!(text::to_text(&a), text::to_text(&b));
}

#[test]
fn different_policies_diverge() {
    let (_, relief) = run_traced(PolicyKind::Relief);
    let (_, fcfs) = run_traced(PolicyKind::Fcfs);
    let div = first_divergence_events(&relief, &fcfs).expect("policies must diverge");
    let report = div.report();
    assert!(report.contains("divergence at entry"), "unexpected report: {report}");
    assert!(
        first_divergence_lines(&text::to_text(&relief), &text::to_text(&fcfs)).is_some(),
        "text-level diff must also diverge"
    );
}

#[test]
fn chrome_export_is_well_formed_and_contains_decisions() {
    let (_, relief) = run_traced(PolicyKind::Relief);
    let (_, fcfs) = run_traced(PolicyKind::Fcfs);
    for events in [&relief, &fcfs] {
        let json = to_chrome_json(events, &ChromeOptions::default());
        assert!(is_well_formed_json(&json), "exporter produced malformed JSON");
        assert!(json.contains("\"traceEvents\""));
    }
    // RELIEF escalates forwarding nodes and runs the Algorithm 2
    // feasibility check; both decisions must be visible in the export.
    let json = to_chrome_json(&relief, &ChromeOptions::default());
    assert!(json.contains("escalation-granted"), "no escalation events exported");
    assert!(json.contains("feasibility"), "no feasibility-check events exported");
    // FCFS never escalates.
    assert!(!to_chrome_json(&fcfs, &ChromeOptions::default()).contains("escalation"));
}

#[test]
fn event_counters_reconcile_with_run_stats() {
    for policy in [PolicyKind::Fcfs, PolicyKind::Lax, PolicyKind::Relief] {
        let (result, events) = run_traced(policy);
        let counters = EventCounters::from_events(&events);
        let mismatches = relief_metrics::reconcile(&counters, &result.stats);
        assert!(
            mismatches.is_empty(),
            "{policy:?}: {}",
            mismatches
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert_eq!(counters.events_dispatched, result.events_dispatched, "{policy:?}");
    }
}

#[test]
fn attaching_a_tracer_does_not_perturb_the_simulation() {
    let (traced, _) = run_traced(PolicyKind::Relief);
    let apps = vec![
        AppSpec::once("C", App::Canny.dag()),
        AppSpec::once("L", App::Lstm.dag()),
    ];
    let plain = SocSim::new(SocConfig::mobile(PolicyKind::Relief), apps).run();
    assert_eq!(traced.stats.exec_time, plain.stats.exec_time);
    assert_eq!(traced.stats.traffic, plain.stats.traffic);
    assert_eq!(traced.stats.apps, plain.stats.apps);
}

#[test]
fn recorded_trace_matches_trace_rebuilt_from_events() {
    let (result, events) = run_traced(PolicyKind::Relief);
    assert_eq!(result.trace, Trace::from_events(&events));
    assert!(!result.trace.spans.is_empty());
}
