//! Integration tests pinning the paper's headline observations.
//!
//! These exercise the full stack (workloads → policies → SoC simulator →
//! metrics) and assert the *shape* of the paper's results: who wins, in
//! which direction, and by roughly what kind of margin. Absolute numbers
//! are simulator-specific and are recorded in EXPERIMENTS.md instead.

use relief::prelude::*;
use relief_metrics::summary::geometric_mean;
use relief_workloads::Contention;

fn run(policy: PolicyKind, mix: &Mix, continuous: bool) -> RunStats {
    let cfg = if continuous {
        SocConfig::mobile(policy).with_time_limit(CONTINUOUS_TIME_LIMIT)
    } else {
        SocConfig::mobile(policy)
    };
    SocSim::new(cfg, mix.workload()).run().stats
}

fn gmean_over_high(policy: PolicyKind, metric: impl Fn(&RunStats) -> f64) -> f64 {
    geometric_mean(
        Contention::High.mixes().iter().map(|m| metric(&run(policy, m, false))),
    )
}

/// Observation 1: SOTA policies under-utilize forwarding; RELIEF
/// consistently achieves the majority of possible forwards.
#[test]
fn observation1_relief_forwards_dominate_sota() {
    let relief = gmean_over_high(PolicyKind::Relief, RunStats::forward_percent);
    assert!(relief > 60.0, "RELIEF gmean forwards {relief:.1}% (paper: >65%)");
    for p in [PolicyKind::Fcfs, PolicyKind::GedfD, PolicyKind::GedfN, PolicyKind::Lax, PolicyKind::HetSched] {
        let base = gmean_over_high(p, RunStats::forward_percent);
        assert!(
            relief > 1.5 * base,
            "RELIEF ({relief:.1}%) must clearly beat {p} ({base:.1}%)"
        );
    }
}

/// Observation 2: RELIEF reduces main-memory traffic versus every
/// baseline under high contention.
#[test]
fn observation2_relief_cuts_dram_traffic() {
    let dram = |p| gmean_over_high(p, |s| s.traffic.dram_bytes() as f64);
    let relief = dram(PolicyKind::Relief);
    for p in [PolicyKind::Fcfs, PolicyKind::GedfN, PolicyKind::Lax, PolicyKind::HetSched] {
        let base = dram(p);
        assert!(
            relief < 0.95 * base,
            "RELIEF DRAM ({relief:.2e}) must undercut {p} ({base:.2e})"
        );
    }
}

/// Observation 3 (directional): lower traffic means lower memory energy,
/// normalized to LAX as in Fig. 6.
#[test]
fn observation3_energy_tracks_traffic() {
    let model = EnergyModel::new();
    let mixes = Contention::High.mixes();
    let mut relief_norm = Vec::new();
    for m in &mixes {
        let lax = run(PolicyKind::Lax, m, false);
        let relief = run(PolicyKind::Relief, m, false);
        let e_lax = model.energy(&lax.traffic, lax.exec_time).dram_nj;
        let e_rel = model.energy(&relief.traffic, relief.exec_time).dram_nj;
        relief_norm.push(e_rel / e_lax);
    }
    let g = geometric_mean(relief_norm.iter().copied());
    assert!(g < 1.0, "RELIEF DRAM energy must average below LAX (got {g:.3})");
}

/// Observation 5: RELIEF meets more node deadlines on average under high
/// contention, and rarely fewer.
#[test]
fn observation5_relief_meets_more_node_deadlines() {
    let relief = gmean_over_high(PolicyKind::Relief, RunStats::node_deadline_percent);
    for p in [PolicyKind::Fcfs, PolicyKind::GedfN, PolicyKind::HetSched] {
        let base = gmean_over_high(p, RunStats::node_deadline_percent);
        assert!(
            relief >= base,
            "RELIEF ({relief:.1}%) must not trail {p} ({base:.1}%) on average"
        );
    }
}

/// §V-D: the CDH mix is the known exception where RELIEF (like GEDF-N)
/// prioritizes Deblur and loses node deadlines to LAX.
#[test]
fn cdh_anomaly_reproduces() {
    let cdh = Contention::High
        .mixes()
        .into_iter()
        .find(|m| m.label() == "CDH")
        .expect("CDH mix exists");
    let relief = run(PolicyKind::Relief, &cdh, false).node_deadline_percent();
    let lax = run(PolicyKind::Lax, &cdh, false).node_deadline_percent();
    assert!(
        lax > relief,
        "paper: LAX ({lax:.1}%) beats RELIEF ({relief:.1}%) on CDH node deadlines"
    );
}

/// Fig. 2: RELIEF achieves the ideal schedule on the pedagogical example —
/// maximum colocations, every deadline met — while every baseline loses
/// the colocation windows.
#[test]
fn fig2_relief_achieves_ideal_schedule() {
    let eval = |policy: PolicyKind| {
        let cfg = SocConfig::generic(vec![1, 1], policy);
        let r = SocSim::new(cfg, relief_bench_fig2()).run().stats;
        let met: u64 = r.apps.values().map(|a| a.dag_deadlines_met).sum();
        (r.colocations(), met)
    };
    let (relief_colocs, relief_met) = eval(PolicyKind::Relief);
    assert_eq!(relief_colocs, 6);
    assert_eq!(relief_met, 3);
    for p in [PolicyKind::Fcfs, PolicyKind::GedfD, PolicyKind::GedfN, PolicyKind::Lax, PolicyKind::Ll, PolicyKind::HetSched] {
        let (colocs, met) = eval(p);
        assert!(colocs < relief_colocs, "{p} must lose colocations ({colocs})");
        assert!(met < relief_met, "{p} must miss a deadline ({met}/3)");
    }
}

/// Rebuild of the Fig. 2 workload without depending on the bench crate:
/// three identical A→A→B→B chains with one shared deadline.
fn relief_bench_fig2() -> Vec<AppSpec> {
    use std::sync::Arc;
    let node = |acc: u32, t_us: u64| {
        NodeSpec::new(AccTypeId(acc), Dur::from_us(t_us)).with_output_bytes(16_384)
    };
    (1..=3)
        .map(|i| {
            let mut b = DagBuilder::new(format!("d{i}"), Dur::from_us(340));
            let ids: Vec<NodeId> =
                [node(0, 20), node(0, 30), node(1, 50), node(1, 30)]
                    .into_iter()
                    .map(|n| b.add_node(n))
                    .collect();
            b.add_chain(&ids).expect("fresh nodes");
            AppSpec::once(format!("D{i}"), Arc::new(b.build().expect("valid")))
        })
        .collect()
}

/// Table V: every application meets its deadline when run alone, and the
/// solo laxities land near the paper's values.
#[test]
fn table5_solo_laxities() {
    // (app, paper laxity in ms, tolerance in ms)
    let cases = [
        (App::Canny, 13.6, 1.5),
        (App::Deblur, 0.2, 1.0),
        (App::Gru, 2.3, 2.0),
        (App::Harris, 14.0, 4.0),
        (App::Lstm, 3.6, 1.0),
    ];
    for (app, paper_ms, tol) in cases {
        let stats = SocSim::new(
            SocConfig::mobile(PolicyKind::Relief),
            vec![AppSpec::once(app.symbol(), app.dag())],
        )
        .run()
        .stats;
        let a = &stats.apps[app.symbol()];
        assert_eq!(a.dag_deadlines_met, 1, "{app} must meet its deadline solo");
        let laxity = app.deadline().as_ms_f64() - a.dag_runtimes[0].as_ms_f64();
        assert!(
            (laxity - paper_ms).abs() <= tol,
            "{app}: solo laxity {laxity:.2}ms vs Table V {paper_ms}ms"
        );
    }
}

/// §V-A: under RELIEF, all RNN forwards materialize as colocations (every
/// RNN task maps to the single elem-matrix accelerator).
#[test]
fn rnn_forwards_are_colocations() {
    for app in [App::Gru, App::Lstm] {
        let stats = SocSim::new(
            SocConfig::mobile(PolicyKind::Relief),
            vec![AppSpec::once(app.symbol(), app.dag())],
        )
        .run()
        .stats;
        let a = &stats.apps[app.symbol()];
        assert_eq!(a.forwards, 0, "{app}: RNN edges never cross accelerators");
        assert!(a.colocations > 0, "{app}: chains must colocate");
    }
}

/// Observation 10: RELIEF reduces interconnect occupancy versus LAX and
/// gains nothing from a crossbar (these workloads are not
/// interconnect-bound).
#[test]
fn observation10_interconnect() {
    let mixes = Contention::High.mixes();
    let mut lax_occ = Vec::new();
    let mut relief_occ = Vec::new();
    let mut bus_time = Vec::new();
    let mut xbar_time = Vec::new();
    for m in &mixes {
        lax_occ.push(run(PolicyKind::Lax, m, false).interconnect_occupancy());
        let bus = run(PolicyKind::Relief, m, false);
        relief_occ.push(bus.interconnect_occupancy());
        bus_time.push(bus.exec_time.as_us_f64());
        let mut cfg = SocConfig::mobile(PolicyKind::Relief);
        cfg.mem = cfg.mem.with_crossbar();
        let xbar = SocSim::new(cfg, m.workload()).run().stats;
        xbar_time.push(xbar.exec_time.as_us_f64());
    }
    let lax = geometric_mean(lax_occ.iter().copied());
    let relief = geometric_mean(relief_occ.iter().copied());
    assert!(relief < lax, "RELIEF occupancy {relief:.3} must undercut LAX {lax:.3}");
    let bus = geometric_mean(bus_time.iter().copied());
    let xbar = geometric_mean(xbar_time.iter().copied());
    let gain = (bus - xbar) / bus;
    assert!(gain.abs() < 0.02, "crossbar must not matter (gain {gain:.3})");
}

/// Table VII flavor: under continuous contention, RELIEF lets every
/// application in GHL and DGL make progress (no starvation), unlike LAX.
#[test]
fn continuous_contention_progress() {
    for label in ["DGL", "GHL"] {
        let mix = Contention::Continuous
            .mixes()
            .into_iter()
            .find(|m| m.label() == label)
            .expect("mix exists");
        let relief = run(PolicyKind::Relief, &mix, true);
        for app in relief.apps.values() {
            assert!(
                app.dags_completed > 0,
                "RELIEF must let {} progress in {label}",
                app.name
            );
            assert!(!app.starved);
        }
    }
}

/// The LAX starvation pathology, §V-E verbatim: "Deblur is starved in
/// every mix it is in except DGL" — Deblur's 0.2 ms laxity dies after one
/// 1.5 ms convolution stall, and LAX de-prioritizes it forever; DGL
/// escapes because GRU/LSTM never use the convolution accelerator.
#[test]
fn lax_starves_deblur_in_every_mix_except_dgl() {
    for mix in Contention::Continuous.mixes() {
        if !mix.label().contains('D') {
            continue;
        }
        let stats = run(PolicyKind::Lax, &mix, true);
        let deblur = &stats.apps["D"];
        if mix.label() == "DGL" {
            assert!(
                deblur.dags_completed > 0,
                "paper: Deblur escapes starvation in DGL"
            );
        } else {
            assert!(
                deblur.starved,
                "paper: LAX must starve Deblur in {} (completed {})",
                mix.label(),
                deblur.dags_completed
            );
        }
    }
}

/// Deterministic end-to-end: the full CDG high-contention run is
/// bit-identical across invocations.
#[test]
fn full_mix_determinism() {
    let mix = &Contention::High.mixes()[0];
    let a = run(PolicyKind::Relief, mix, false);
    let b = run(PolicyKind::Relief, mix, false);
    assert_eq!(a, b);
}
