//! Scheduler conformance suite: invariants every policy must satisfy,
//! checked against the structured event trace of small hand-built DAGs.
//!
//! For each policy (FCFS, GEDF-D, GEDF-N, LL, LAX, HetSched, RELIEF,
//! RELIEF-LAX):
//!
//! 1. **Precedence** — no task's compute starts before every parent's
//!    compute has finished (outputs cannot be sourced from work that has
//!    not produced them).
//! 2. **Forward/colocation honesty** — an input claimed as `Colocated`
//!    must come from a parent that ran on the *same* accelerator
//!    instance; one claimed as `Forwarded { from_inst }` must come from a
//!    parent that actually ran on `from_inst`, and the producer must have
//!    finished before the transfer. With forwarding hardware disabled,
//!    no such claims may appear at all.
//! 3. **Escalation safety (RELIEF)** — the laxity-feasibility check
//!    (Algorithm 2) must never make RELIEF miss a DAG deadline that LL
//!    meets on the same workload.

use relief::prelude::*;
use relief_trace::event::{EventKind, InputSource, TaskRef};
use relief_trace::TraceEvent;
use std::collections::BTreeMap;
use std::sync::Arc;

const ALL_POLICIES: [PolicyKind; 8] = PolicyKind::ALL;

/// A→{B,C}→D diamond over two accelerator types, sized so the fan-out
/// creates real forwarding/colocation opportunities.
fn diamond(name: &str, deadline_us: u64) -> Arc<Dag> {
    let mut b = DagBuilder::new(name, Dur::from_us(deadline_us));
    let n0 = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(40)).with_output_bytes(32_768));
    let n1 = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(60)).with_output_bytes(16_384));
    let n2 = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(30)).with_output_bytes(16_384));
    let n3 = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(50)).with_output_bytes(8_192));
    b.add_edge(n0, n1).unwrap();
    b.add_edge(n0, n2).unwrap();
    b.add_edge(n1, n3).unwrap();
    b.add_edge(n2, n3).unwrap();
    Arc::new(b.build().expect("diamond is a valid dag"))
}

/// A four-stage chain alternating between the two accelerator types.
fn chain(name: &str, deadline_us: u64) -> Arc<Dag> {
    let mut b = DagBuilder::new(name, Dur::from_us(deadline_us));
    let ids: Vec<NodeId> = [(0u32, 25u64), (1, 35), (0, 20), (1, 45)]
        .into_iter()
        .map(|(acc, us)| {
            b.add_node(NodeSpec::new(AccTypeId(acc), Dur::from_us(us)).with_output_bytes(16_384))
        })
        .collect();
    b.add_chain(&ids).unwrap();
    Arc::new(b.build().expect("chain is a valid dag"))
}

fn conformance_workload() -> Vec<AppSpec> {
    vec![
        AppSpec::once("D1", diamond("d1", 400)),
        AppSpec::once("D2", diamond("d2", 500)),
        AppSpec::once("X1", chain("x1", 450)),
    ]
}

/// Runs the conformance workload under `policy` on a 2×A + 2×B generic
/// platform and returns the full event stream.
fn traced_run(policy: PolicyKind, forwarding: bool) -> Vec<TraceEvent> {
    let mut cfg = SocConfig::generic(vec![2, 2], policy);
    if !forwarding {
        cfg = cfg.without_forwarding();
    }
    let ring = RingBufferSink::shared(1 << 20);
    let mut tracer = Tracer::off();
    tracer.attach(ring.clone());
    SocSim::new(cfg, conformance_workload()).with_tracer(&tracer).run();
    let ring = ring.borrow();
    assert_eq!(ring.dropped(), 0, "conformance trace must not overflow");
    ring.snapshot()
}

/// Compute spans per task: (start_ps, end_ps, accelerator instance).
fn compute_spans(events: &[TraceEvent]) -> BTreeMap<(u32, u32), (u64, u64, u32)> {
    let mut spans = BTreeMap::new();
    for ev in events {
        if let EventKind::ComputeEnd { task, inst, start_ps, .. } = &ev.kind {
            let prev = spans.insert((task.instance, task.node), (*start_ps, ev.at_ps, *inst));
            assert!(prev.is_none(), "task {task} completed twice");
        }
    }
    spans
}

fn key(t: &TaskRef) -> (u32, u32) {
    (t.instance, t.node)
}

#[test]
fn no_policy_starts_a_task_before_its_parents_finish() {
    for policy in ALL_POLICIES {
        let events = traced_run(policy, true);
        let spans = compute_spans(&events);
        assert!(!spans.is_empty(), "{policy}: no compute spans traced");
        for ev in &events {
            if let EventKind::InputSourced { task, parent: Some(parent), .. } = &ev.kind {
                let (child_start, _, _) = spans[&key(task)];
                let (_, parent_end, _) = *spans
                    .get(&key(parent))
                    .unwrap_or_else(|| panic!("{policy}: {task} sourced from untraced {parent}"));
                assert!(
                    parent_end <= child_start,
                    "{policy}: {task} started compute at {child_start} ps before its \
                     parent {parent} finished at {parent_end} ps"
                );
                assert!(
                    parent_end <= ev.at_ps,
                    "{policy}: {task} sourced an input at {} ps before its producer \
                     {parent} finished at {parent_end} ps",
                    ev.at_ps
                );
            }
        }
    }
}

#[test]
fn forward_and_colocation_claims_match_producer_placement() {
    for policy in ALL_POLICIES {
        let events = traced_run(policy, true);
        let spans = compute_spans(&events);
        let mut checked = 0;
        for ev in &events {
            let EventKind::InputSourced { task, inst, parent, source, .. } = &ev.kind else {
                continue;
            };
            match source {
                InputSource::Colocated => {
                    let parent = parent
                        .as_ref()
                        .unwrap_or_else(|| panic!("{policy}: colocated input without producer"));
                    let (_, _, parent_inst) = spans[&key(parent)];
                    assert_eq!(
                        parent_inst, *inst,
                        "{policy}: {task} claims colocation on inst{inst}, but parent \
                         {parent} ran on inst{parent_inst}"
                    );
                    checked += 1;
                }
                InputSource::Forwarded { from_inst } => {
                    let parent = parent
                        .as_ref()
                        .unwrap_or_else(|| panic!("{policy}: forwarded input without producer"));
                    let (_, _, parent_inst) = spans[&key(parent)];
                    assert_eq!(
                        parent_inst, *from_inst,
                        "{policy}: {task} claims a forward from inst{from_inst}, but \
                         parent {parent} ran on inst{parent_inst}"
                    );
                    assert_ne!(
                        from_inst, inst,
                        "{policy}: a same-instance transfer must be a colocation, not a \
                         forward"
                    );
                    checked += 1;
                }
                InputSource::Dram => {}
            }
        }
        // The diamond workload always admits at least chain colocations
        // under any work-conserving policy; an empty check set would mean
        // the test lost its teeth.
        assert!(checked > 0, "{policy}: no forwarding/colocation claims to verify");
    }
}

#[test]
fn disabling_forwarding_hardware_silences_all_claims() {
    for policy in ALL_POLICIES {
        let events = traced_run(policy, false);
        for ev in &events {
            if let EventKind::InputSourced { task, source, .. } = &ev.kind {
                assert!(
                    matches!(source, InputSource::Dram),
                    "{policy}: {task} claims {source:?} with forwarding hardware disabled"
                );
            }
        }
    }
}

/// RELIEF's escalation feasibility check must be safe: on a workload
/// where LL meets every DAG deadline with zero jitter, RELIEF (whose
/// Algorithm 2 only grants an escalation if no higher-priority task
/// would be pushed past its deadline) must meet them all too.
#[test]
fn relief_escalations_never_break_deadlines_ll_meets() {
    let run = |policy: PolicyKind| {
        let mut cfg = SocConfig::generic(vec![2, 2], policy);
        cfg.compute_jitter = 0.0;
        SocSim::new(cfg, conformance_workload()).run().stats
    };
    let ll = run(PolicyKind::Ll);
    let relief = run(PolicyKind::Relief);
    let relief_lax = run(PolicyKind::ReliefLax);
    let met = |s: &RunStats| -> u64 { s.apps.values().map(|a| a.dag_deadlines_met).sum() };
    let done = |s: &RunStats| -> u64 { s.apps.values().map(|a| a.dags_completed).sum() };
    assert_eq!(done(&ll), 3);
    assert_eq!(met(&ll), 3, "LL must meet every deadline on the conformance workload");
    assert_eq!(done(&relief), 3);
    assert!(
        met(&relief) >= met(&ll),
        "RELIEF met {} of {} deadlines but LL met {} — an escalation broke a deadline",
        met(&relief),
        done(&relief),
        met(&ll)
    );
    assert!(met(&relief_lax) >= met(&ll), "RELIEF-LAX regressed deadlines vs LL");
}
