//! Bring your own accelerator: build a platform and application the
//! library has never seen — an audio front-end with FFT, MEL-filterbank,
//! and DNN accelerators — and schedule it with RELIEF.
//!
//! The policy framework is deliberately agnostic of the seven built-in
//! accelerators; anything expressible as typed tasks with profiled compute
//! times and buffer sizes can be scheduled.
//!
//! ```sh
//! cargo run --release --example custom_accelerator
//! ```

use relief::prelude::*;
use std::sync::Arc;

/// Accelerator types of the custom platform.
const FFT: AccTypeId = AccTypeId(0);
const MEL: AccTypeId = AccTypeId(1);
const DNN: AccTypeId = AccTypeId(2);

/// A keyword-spotting pipeline: windowed FFT frames -> MEL filterbank ->
/// small DNN, eight overlapping frames per utterance.
fn keyword_spotting(frames: u32) -> Arc<Dag> {
    let mut b = DagBuilder::new("kws", Dur::from_ms(4));
    let node = |acc, us, out: u64| NodeSpec::new(acc, Dur::from_us(us)).with_output_bytes(out);
    let mut prev_dnn: Option<NodeId> = None;
    for i in 0..frames {
        let fft = b.add_node(
            node(FFT, 40, 8_192)
                .with_dram_input_bytes(4_096) // audio window from DRAM
                .with_label(format!("fft{i}")),
        );
        let mel = b.add_node(node(MEL, 15, 2_048).with_label(format!("mel{i}")));
        let dnn = b.add_node(node(DNN, 60, 512).with_label(format!("dnn{i}")));
        b.add_edge(fft, mel).expect("fresh nodes");
        b.add_edge(mel, dnn).expect("fresh nodes");
        if let Some(p) = prev_dnn {
            // The DNN carries state across frames.
            b.add_edge(p, dnn).expect("fresh nodes");
        }
        prev_dnn = Some(dnn);
    }
    Arc::new(b.build().expect("hand-built dag is valid"))
}

fn main() {
    println!("Custom platform: FFT + MEL + DNN keyword spotting, two microphones\n");
    let mut table = relief::metrics::report::Table::with_columns(&[
        "policy",
        "fwd",
        "coloc",
        "deadlines",
        "makespan us",
        "DRAM KiB",
    ]);
    for policy in [PolicyKind::Fcfs, PolicyKind::GedfN, PolicyKind::Relief] {
        // One FFT, one MEL, one DNN accelerator (instances per type id).
        let cfg = SocConfig::generic(vec![1, 1, 1], policy);
        let apps = vec![
            AppSpec::once("mic0", keyword_spotting(8)),
            AppSpec::once("mic1", keyword_spotting(8)),
        ];
        let r = SocSim::new(cfg, apps).run();
        let s = &r.stats;
        let met: u64 = s.apps.values().map(|a| a.dag_deadlines_met).sum();
        table.row(vec![
            policy.name().to_string(),
            s.forwards().to_string(),
            s.colocations().to_string(),
            format!("{met}/2"),
            format!("{:.0}", s.exec_time.as_us_f64()),
            format!("{:.0}", s.traffic.dram_bytes() as f64 / 1024.0),
        ]);
    }
    println!("{}", table.render());
    println!("RELIEF needs no knowledge of the accelerators beyond task profiles.");
}
