//! Quickstart: run one application mix under every scheduling policy and
//! compare forwards, deadlines, and memory traffic.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use relief::prelude::*;

fn main() {
    println!("RELIEF quickstart: Canny + GRU + LSTM under all policies\n");
    let mut table = relief::metrics::report::Table::with_columns(&[
        "policy",
        "fwd+coloc %",
        "node deadlines %",
        "DRAM MB",
        "exec ms",
    ]);

    for policy in PolicyKind::ALL {
        let apps = vec![
            AppSpec::once("C", App::Canny.dag()),
            AppSpec::once("G", App::Gru.dag()),
            AppSpec::once("L", App::Lstm.dag()),
        ];
        let result = SocSim::new(SocConfig::mobile(policy), apps).run();
        let s = &result.stats;
        table.row(vec![
            policy.name().to_string(),
            format!("{:.1}", s.forward_percent()),
            format!("{:.1}", s.node_deadline_percent()),
            format!("{:.2}", s.traffic.dram_bytes() as f64 / 1e6),
            format!("{:.2}", s.exec_time.as_ms_f64()),
        ]);
    }
    println!("{}", table.render());
    println!("RELIEF should lead on forwards while keeping deadline misses low.");
}
