//! Computational-photography burst: Deblur + Harris sharing the camera
//! front-end accelerators — the panorama/deshake scenario from the paper's
//! introduction (§II-A).
//!
//! Shows how to inspect data-movement breakdown and the memory energy
//! model for a single mix.
//!
//! ```sh
//! cargo run --release --example camera_pipeline
//! ```

use relief::prelude::*;

fn main() {
    println!("Camera pipeline: Richardson-Lucy deblur + Harris corners\n");
    for policy in [PolicyKind::Lax, PolicyKind::Relief] {
        let apps = vec![
            AppSpec::once("D", App::Deblur.dag()),
            AppSpec::once("H", App::Harris.dag()),
        ];
        let result = SocSim::new(SocConfig::mobile(policy), apps).run();
        let s = &result.stats;
        let t = &s.traffic;
        let energy = EnergyModel::new().energy(t, s.exec_time);
        println!("== {} ==", policy.name());
        println!("  makespan            {:>10.2} ms", s.exec_time.as_ms_f64());
        println!(
            "  deadlines           D: {}  H: {}",
            if s.apps["D"].dag_deadlines_met == 1 { "met" } else { "MISSED" },
            if s.apps["H"].dag_deadlines_met == 1 { "met" } else { "MISSED" },
        );
        println!(
            "  edges               {} total, {} forwarded, {} colocated",
            s.edges_total,
            s.forwards(),
            s.colocations()
        );
        println!(
            "  data movement       {:>7.0} KiB DRAM, {:>6.0} KiB SPAD-to-SPAD, {:>6.0} KiB eliminated",
            t.dram_bytes() as f64 / 1024.0,
            t.spad_to_spad_bytes as f64 / 1024.0,
            t.colocated_bytes as f64 / 1024.0,
        );
        println!(
            "  memory energy       {:>7.1} uJ DRAM + {:>5.1} uJ SPAD",
            energy.dram_nj / 1000.0,
            energy.spad_nj / 1000.0,
        );
        println!();
    }
    println!("Both pipelines are convolution-bound (Table II: Deblur spends only ~3% of");
    println!("its time on data movement), so most edges forward under either policy and");
    println!("the mix is compute- not memory-limited — exactly the paper's DH behavior.");
    println!("Deblur's 0.2 ms solo laxity also makes it the mix's deadline casualty.");
}
