//! Visualize schedules: record and render per-accelerator timelines for
//! the Canny pipeline under two policies, paper-Figure-2 style.
//!
//! `=` marks a task whose input was colocated (zero movement), `~` one
//! that forwarded scratchpad-to-scratchpad, `.` one fed from DRAM.
//!
//! ```sh
//! cargo run --release --example schedule_trace
//! ```

use relief::accel::kinds::AccKind;
use relief::prelude::*;

fn main() {
    let names: Vec<String> =
        AccKind::ALL.iter().map(|k| format!("{:>14}", k.name())).collect();

    for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
        let mut cfg = SocConfig::mobile(policy);
        cfg.record_trace = true;
        let apps = vec![
            AppSpec::once("C", App::Canny.dag()),
            AppSpec::once("H", App::Harris.dag()),
        ];
        let result = SocSim::new(cfg, apps).run();
        println!("== {} == (makespan {:.2} ms)", policy.name(), result.stats.exec_time.as_ms_f64());
        println!("{}", result.trace.render(&names));
    }
    println!("Also available: Dag::to_dot() renders any task graph for Graphviz:");
    let dot = App::Canny.dag().to_dot();
    println!("{}", dot.lines().take(6).collect::<Vec<_>>().join("\n"));
    println!("  ... ({} lines total)", dot.lines().count());
}
