//! Lane detection: Canny + LSTM running together, the real-world mix the
//! paper cites for self-driving cars (§IV-C, citing Yang et al.).
//!
//! Demonstrates per-application QoS reporting under continuous operation:
//! the camera pipeline (Canny at 60 FPS) and the LSTM lane tracker loop
//! for 50 ms while contending for the elem-matrix accelerator.
//!
//! ```sh
//! cargo run --release --example lane_detection
//! ```

use relief::prelude::*;

fn main() {
    println!("Lane detection: Canny (camera) + LSTM (lane tracking), 50 ms continuous\n");
    let mut table = relief::metrics::report::Table::with_columns(&[
        "policy",
        "Canny frames",
        "Canny ddl %",
        "LSTM inferences",
        "LSTM ddl %",
        "fwd+coloc %",
        "DRAM MB",
    ]);

    for policy in [PolicyKind::Fcfs, PolicyKind::Lax, PolicyKind::HetSched, PolicyKind::Relief] {
        let apps = vec![
            AppSpec::continuous("C", App::Canny.dag()),
            AppSpec::continuous("L", App::Lstm.dag()),
        ];
        let cfg = SocConfig::mobile(policy).with_time_limit(Time::from_ms(50));
        let result = SocSim::new(cfg, apps).run();
        let s = &result.stats;
        let canny = &s.apps["C"];
        let lstm = &s.apps["L"];
        table.row(vec![
            policy.name().to_string(),
            canny.dags_completed.to_string(),
            format!("{:.0}", 100.0 * canny.dag_deadline_ratio()),
            lstm.dags_completed.to_string(),
            format!("{:.0}", 100.0 * lstm.dag_deadline_ratio()),
            format!("{:.1}", s.forward_percent()),
            format!("{:.2}", s.traffic.dram_bytes() as f64 / 1e6),
        ]);
    }
    println!("{}", table.render());
    println!(
        "By colocating the LSTM's elem-matrix chains, RELIEF sustains noticeably\n\
         more lane-tracking inferences in the same 50 ms at lower DRAM traffic,\n\
         while every completed frame still meets its deadline."
    );
}
